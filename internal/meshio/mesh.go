// Package meshio implements the analysis data model of the paper's
// Sec. III-C2 and its storage: each block holds a conventional unstructured
// mesh — vertices listed once, integer indices connecting vertices into
// faces and cells — plus the original particle locations, per-cell volumes
// and surface areas, and the block extents. Blocks serialize to a compact
// binary form written collectively through internal/diy into a single file,
// and can be exported as legacy-VTK polydata for visualization (the
// stand-in for the paper's ParaView plugin rendering path).
package meshio

import (
	"repro/internal/geom"
	"repro/internal/voronoi"
)

// FaceConn is one polygonal face of a cell in index form.
type FaceConn struct {
	// Neighbor is the particle ID across the face (negative for walls of
	// the computation box; see voronoi.Wall*).
	Neighbor int64
	// Verts are indices into BlockMesh.Verts, ordered counterclockwise
	// viewed from outside the cell.
	Verts []int32
}

// CellConn is the connectivity of one Voronoi cell.
type CellConn struct {
	Faces []FaceConn
}

// BlockMesh is the per-block analysis data model.
type BlockMesh struct {
	// Extents is the block's region of the global domain.
	Extents geom.Box
	// Verts is the shared vertex pool; vertices on faces between adjacent
	// cells are stored once (the paper: each vertex is shared by ~5 cells).
	Verts []geom.Vec3
	// Particles are the cell sites (original particle positions).
	Particles []geom.Vec3
	// ParticleIDs are the global particle IDs, aligned with Particles.
	ParticleIDs []int64
	// Volumes and Areas are per-cell scalars, aligned with Particles.
	Volumes []float64
	Areas   []float64
	// Complete flags cells proven correct by the ghost exchange.
	Complete []bool
	// Cells is per-cell face connectivity, aligned with Particles.
	Cells []CellConn
}

// NumCells returns the number of cells in the block.
func (m *BlockMesh) NumCells() int { return len(m.Particles) }

// weld quantizes a coordinate for vertex dedup across cells in a block.
type weldKey struct{ x, y, z int64 }

// BuildBlockMesh assembles the data model from computed cells, welding
// vertices shared between adjacent cells. weldTol is the absolute
// coordinate quantum used for welding; pass 0 for a default of 1e-7 of the
// extents' largest side.
func BuildBlockMesh(cells []*voronoi.Cell, extents geom.Box, weldTol float64) *BlockMesh {
	return new(MeshBuilder).Build(cells, extents, weldTol)
}

// MeshBuilder is the retained-state form of BuildBlockMesh: the weld map,
// the mesh's per-cell arrays, and the face/index arenas are reused across
// Build calls, so rebuilding a mesh of stable size allocates almost
// nothing. The built mesh is identical in content to BuildBlockMesh's
// result but is a loan — it is valid only until the builder's next Build.
// The zero MeshBuilder is ready to use; a builder is not safe for
// concurrent use.
type MeshBuilder struct {
	m    BlockMesh
	pool map[weldKey]int32

	// faceArena holds every cell's Faces contiguously, vertArena every
	// face's Verts; CellConn and FaceConn slices are carved as three-index
	// subslices, so a growth reallocation strands the old array without
	// corrupting views already handed out.
	faceArena []FaceConn
	vertArena []int32
}

// Build assembles the data model from computed cells into the builder's
// retained storage. Arguments are those of BuildBlockMesh; the previous
// Build's mesh is invalidated.
func (b *MeshBuilder) Build(cells []*voronoi.Cell, extents geom.Box, weldTol float64) *BlockMesh {
	if weldTol <= 0 {
		weldTol = 1e-7 * maxf(extents.Size().MaxAbs(), 1e-30)
	}
	m := &b.m
	m.Extents = extents
	m.Verts = m.Verts[:0]
	m.Particles = m.Particles[:0]
	m.ParticleIDs = m.ParticleIDs[:0]
	m.Volumes = m.Volumes[:0]
	m.Areas = m.Areas[:0]
	m.Complete = m.Complete[:0]
	m.Cells = m.Cells[:0]
	b.faceArena = b.faceArena[:0]
	b.vertArena = b.vertArena[:0]
	if b.pool == nil {
		b.pool = map[weldKey]int32{}
	} else {
		clear(b.pool)
	}
	q := func(v geom.Vec3) weldKey {
		return weldKey{
			x: int64(roundHalf(v.X / weldTol)),
			y: int64(roundHalf(v.Y / weldTol)),
			z: int64(roundHalf(v.Z / weldTol)),
		}
	}
	for _, c := range cells {
		fbase := len(b.faceArena)
		for _, f := range c.Faces {
			vbase := len(b.vertArena)
			for _, vi := range f.Loop {
				v := c.Verts[vi]
				k := q(v)
				gi, ok := b.pool[k]
				if !ok {
					gi = int32(len(m.Verts))
					m.Verts = append(m.Verts, v)
					b.pool[k] = gi
				}
				b.vertArena = append(b.vertArena, gi)
			}
			b.faceArena = append(b.faceArena, FaceConn{
				Neighbor: f.Neighbor,
				Verts:    b.vertArena[vbase:len(b.vertArena):len(b.vertArena)],
			})
		}
		m.Cells = append(m.Cells, CellConn{Faces: b.faceArena[fbase:len(b.faceArena):len(b.faceArena)]})
		m.Particles = append(m.Particles, c.Site)
		m.ParticleIDs = append(m.ParticleIDs, c.SiteID)
		m.Volumes = append(m.Volumes, c.Volume())
		m.Areas = append(m.Areas, c.Area())
		m.Complete = append(m.Complete, c.Complete)
	}
	return m
}

// Clone returns a deep copy of the mesh that owns all of its memory,
// detaching it from any builder or session loan it came from.
func (m *BlockMesh) Clone() *BlockMesh {
	out := &BlockMesh{
		Extents:     m.Extents,
		Verts:       append([]geom.Vec3(nil), m.Verts...),
		Particles:   append([]geom.Vec3(nil), m.Particles...),
		ParticleIDs: append([]int64(nil), m.ParticleIDs...),
		Volumes:     append([]float64(nil), m.Volumes...),
		Areas:       append([]float64(nil), m.Areas...),
		Complete:    append([]bool(nil), m.Complete...),
		Cells:       make([]CellConn, len(m.Cells)),
	}
	for ci, c := range m.Cells {
		faces := make([]FaceConn, len(c.Faces))
		for fi, f := range c.Faces {
			faces[fi] = FaceConn{Neighbor: f.Neighbor, Verts: append([]int32(nil), f.Verts...)}
		}
		out.Cells[ci] = CellConn{Faces: faces}
	}
	return out
}

func roundHalf(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return float64(int64(x - 0.5))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Stats summarizes the data-model shape numbers the paper reports
// (Sec. III-C2): faces per cell, vertices per face, vertex sharing, and the
// byte split between floating-point geometry and integer connectivity.
type Stats struct {
	Cells             int
	Faces             int
	FaceVertRefs      int // total vertex references across all faces
	UniqueVerts       int
	FacesPerCell      float64
	VertsPerFace      float64
	VertSharing       float64 // references per unique vertex
	GeometryBytes     int64
	ConnectivityBytes int64
	TotalBytes        int64
	BytesPerParticle  float64
}

// ComputeStats returns the data-model statistics of the block.
func (m *BlockMesh) ComputeStats() Stats {
	var s Stats
	s.Cells = m.NumCells()
	for _, c := range m.Cells {
		s.Faces += len(c.Faces)
		for _, f := range c.Faces {
			s.FaceVertRefs += len(f.Verts)
		}
	}
	s.UniqueVerts = len(m.Verts)
	if s.Cells > 0 {
		s.FacesPerCell = float64(s.Faces) / float64(s.Cells)
	}
	if s.Faces > 0 {
		s.VertsPerFace = float64(s.FaceVertRefs) / float64(s.Faces)
	}
	if s.UniqueVerts > 0 {
		s.VertSharing = float64(s.FaceVertRefs) / float64(s.UniqueVerts)
	}
	s.GeometryBytes, s.ConnectivityBytes = m.byteSplit()
	s.TotalBytes = s.GeometryBytes + s.ConnectivityBytes
	if s.Cells > 0 {
		s.BytesPerParticle = float64(s.TotalBytes) / float64(s.Cells)
	}
	return s
}

// byteSplit accounts the encoded size: geometry (floating-point vertices,
// particles, volumes, areas, extents) versus connectivity (IDs, counts,
// face vertex indices, flags).
func (m *BlockMesh) byteSplit() (geometry, connectivity int64) {
	geometry = int64(48) // extents: 6 float64
	geometry += int64(24 * len(m.Verts))
	geometry += int64(24 * len(m.Particles))
	geometry += int64(8 * len(m.Volumes))
	geometry += int64(8 * len(m.Areas))

	connectivity = int64(8 * 2) // counts header (nVerts, nCells)
	connectivity += int64(8 * len(m.ParticleIDs))
	connectivity += int64(1 * len(m.Complete))
	for _, c := range m.Cells {
		connectivity += 4 // face count
		for _, f := range c.Faces {
			connectivity += 8 + 4                   // neighbor + vert count
			connectivity += int64(4 * len(f.Verts)) // indices
		}
	}
	return geometry, connectivity
}

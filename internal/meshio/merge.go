package meshio

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// MergeCanonical combines per-block meshes of one complete tessellation into
// a single decomposition-independent global mesh: runs over the same
// particles with different block counts produce byte-identical encodings.
//
// Block-local cell geometry is not reusable for this — clipping order and
// the block-dependent initial box perturb vertex coordinates at the ulp
// level — so the merge re-derives every vertex canonically: each Voronoi
// vertex is the exact intersection of the three bisector planes between the
// cell site and its face neighbors (taking the nearest periodic image of
// each neighbor), solved by Cramer's rule with the planes ordered by
// neighbor ID. Cells are emitted sorted by particle ID, faces sorted by
// neighbor ID, each face loop oriented outward and rotated to start at its
// lexicographically smallest vertex, and volumes and areas are recomputed
// from the canonical geometry. Only the cell *topology* is taken from the
// inputs, and topology is decomposition-invariant.
//
// The merge requires the full tessellation: every cell complete, no wall
// faces (periodic domains satisfy this), and every face neighbor present as
// a cell site somewhere in the inputs. Nil meshes in the slice are skipped,
// so Output.Meshes can be passed directly.
func MergeCanonical(meshes []*BlockMesh, domain geom.Box, periodic bool) (*BlockMesh, error) {
	type srcCell struct {
		id       int64
		site     geom.Vec3
		mesh     *BlockMesh
		idx      int
		complete bool
	}
	sites := make(map[int64]geom.Vec3)
	var cells []srcCell
	for _, m := range meshes {
		if m == nil {
			continue
		}
		for i := range m.Particles {
			id := m.ParticleIDs[i]
			if _, dup := sites[id]; dup {
				return nil, fmt.Errorf("meshio: particle %d appears in more than one block", id)
			}
			sites[id] = m.Particles[i]
			cells = append(cells, srcCell{id, m.Particles[i], m, i, m.Complete[i]})
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].id < cells[b].id })

	out := &BlockMesh{Extents: domain}
	weldTol := 1e-9 * maxf(domain.Size().MaxAbs(), 1e-30)
	pool := map[weldKey]int32{}
	intern := func(v geom.Vec3) int32 {
		k := weldKey{
			x: int64(roundHalf(v.X / weldTol)),
			y: int64(roundHalf(v.Y / weldTol)),
			z: int64(roundHalf(v.Z / weldTol)),
		}
		if gi, ok := pool[k]; ok {
			return gi
		}
		gi := int32(len(out.Verts))
		out.Verts = append(out.Verts, v)
		pool[k] = gi
		return gi
	}

	for _, cc := range cells {
		src := cc.mesh.Cells[cc.idx]
		nf := len(src.Faces)
		if nf < 4 {
			return nil, fmt.Errorf("meshio: cell %d has %d faces", cc.id, nf)
		}
		// Canonical plane per face, from the nearest periodic image of the
		// neighbor site; faces ordered by (neighbor ID, plane offset).
		planes := make([]geom.Plane, nf)
		order := make([]int, nf)
		for fi, f := range src.Faces {
			if f.Neighbor < 0 {
				return nil, fmt.Errorf("meshio: cell %d has wall face %d; canonical merge requires a complete tessellation", cc.id, f.Neighbor)
			}
			ns, ok := sites[f.Neighbor]
			if !ok {
				return nil, fmt.Errorf("meshio: neighbor %d of cell %d is not among the merged cells", f.Neighbor, cc.id)
			}
			if periodic {
				ns = nearestImage(ns, cc.site, domain)
			}
			planes[fi] = geom.Bisector(cc.site, ns)
			order[fi] = fi
		}
		sort.Slice(order, func(a, b int) bool {
			fa, fb := src.Faces[order[a]], src.Faces[order[b]]
			if fa.Neighbor != fb.Neighbor {
				return fa.Neighbor < fb.Neighbor
			}
			return planes[order[a]].D < planes[order[b]].D
		})
		// rankOf gives each face its canonical position, so vertex plane
		// triples can be chosen by canonical order.
		rankOf := make([]int, nf)
		for r, fi := range order {
			rankOf[fi] = r
		}

		// Vertex -> adjacent faces over the block-local welded indices (the
		// decomposition-invariant topology).
		adj := make(map[int32][]int)
		for fi, f := range src.Faces {
			for _, vi := range f.Verts {
				adj[vi] = append(adj[vi], fi)
			}
		}
		canon := make(map[int32]geom.Vec3, len(adj))
		canonVert := func(vi int32) (geom.Vec3, error) {
			if v, ok := canon[vi]; ok {
				return v, nil
			}
			fl := adj[vi]
			if len(fl) < 3 {
				return geom.Vec3{}, fmt.Errorf("meshio: cell %d vertex on %d faces", cc.id, len(fl))
			}
			// The three canonically-first adjacent planes; any three meet at
			// the same Voronoi vertex, and this choice is decomposition-free.
			sort.Slice(fl, func(a, b int) bool { return rankOf[fl[a]] < rankOf[fl[b]] })
			p1, p2, p3 := planes[fl[0]], planes[fl[1]], planes[fl[2]]
			det := p1.N.Dot(p2.N.Cross(p3.N))
			if math.Abs(det) < 1e-12 {
				return geom.Vec3{}, fmt.Errorf("meshio: cell %d has a degenerate vertex (plane determinant %g)", cc.id, det)
			}
			v := p2.N.Cross(p3.N).Scale(-p1.D).
				Add(p3.N.Cross(p1.N).Scale(-p2.D)).
				Add(p1.N.Cross(p2.N).Scale(-p3.D)).
				Scale(1 / det)
			canon[vi] = v
			return v, nil
		}

		var conn CellConn
		var vol, area float64
		for _, fi := range order {
			f := src.Faces[fi]
			coords := make([]geom.Vec3, len(f.Verts))
			for k, vi := range f.Verts {
				v, err := canonVert(vi)
				if err != nil {
					return nil, err
				}
				coords[k] = v
			}
			// Orient the loop outward (agreeing with the bisector normal,
			// which points from the site toward the neighbor), then rotate it
			// to start at the lexicographically smallest vertex. Both are
			// geometric properties, so construction order cannot leak in.
			if newellNormal(coords).Dot(planes[fi].N) < 0 {
				reverseVecs(coords)
			}
			rotateToMin(coords)
			loop := make([]int32, len(coords))
			for k, v := range coords {
				loop[k] = intern(v)
			}
			conn.Faces = append(conn.Faces, FaceConn{Neighbor: f.Neighbor, Verts: loop})
			// Recompute geometry from the pooled vertices so the stored
			// scalars are exactly consistent with the stored mesh.
			a := out.Verts[loop[0]]
			for k := 1; k+1 < len(loop); k++ {
				b, c := out.Verts[loop[k]], out.Verts[loop[k+1]]
				ab, ac := b.Sub(a), c.Sub(a)
				area += 0.5 * ab.Cross(ac).Norm()
				vol += a.Sub(cc.site).Dot(b.Sub(cc.site).Cross(c.Sub(cc.site))) / 6
			}
		}
		out.Cells = append(out.Cells, conn)
		out.Particles = append(out.Particles, cc.site)
		out.ParticleIDs = append(out.ParticleIDs, cc.id)
		out.Volumes = append(out.Volumes, vol)
		out.Areas = append(out.Areas, area)
		out.Complete = append(out.Complete, cc.complete)
	}
	return out, nil
}

// nearestImage returns the periodic image of s closest to p in the domain
// box: q = s - L*round((s-p)/L) componentwise. round is exact and
// order-free, so the image choice is decomposition-independent.
func nearestImage(s, p geom.Vec3, domain geom.Box) geom.Vec3 {
	L := domain.Size()
	return geom.Vec3{
		X: s.X - L.X*math.Round((s.X-p.X)/L.X),
		Y: s.Y - L.Y*math.Round((s.Y-p.Y)/L.Y),
		Z: s.Z - L.Z*math.Round((s.Z-p.Z)/L.Z),
	}
}

// newellNormal is Newell's polygon normal (unnormalized); its direction
// tells the loop's winding.
func newellNormal(loop []geom.Vec3) geom.Vec3 {
	var n geom.Vec3
	for i := range loop {
		a, b := loop[i], loop[(i+1)%len(loop)]
		n.X += (a.Y - b.Y) * (a.Z + b.Z)
		n.Y += (a.Z - b.Z) * (a.X + b.X)
		n.Z += (a.X - b.X) * (a.Y + b.Y)
	}
	return n
}

func reverseVecs(v []geom.Vec3) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}

// rotateToMin rotates the cyclic loop so the lexicographically smallest
// (X, Y, Z) vertex comes first, preserving winding.
func rotateToMin(v []geom.Vec3) {
	min := 0
	for i := 1; i < len(v); i++ {
		if lexLess(v[i], v[min]) {
			min = i
		}
	}
	if min == 0 {
		return
	}
	rot := append(append([]geom.Vec3(nil), v[min:]...), v[:min]...)
	copy(v, rot)
}

func lexLess(a, b geom.Vec3) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.Z < b.Z
}

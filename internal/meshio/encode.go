package meshio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ErrMeshTooLarge reports a mesh whose vertex or connectivity counts
// exceed what the on-disk formats can index. Both encoders return it
// (wrapped, matchable with errors.Is) instead of silently truncating
// counts to uint32 as the v1 encoder once did.
var ErrMeshTooLarge = errors.New("meshio: mesh exceeds format limits")

// formatCountMax is the largest count either format can represent: v1
// stores face and face-vertex counts as uint32, and both formats index
// the vertex pool with int32-backed indices. A package variable (not a
// const) so tests can lower it and exercise the oversized path without
// allocating 2^32 elements.
var formatCountMax uint64 = math.MaxUint32

// checkEncodable validates m's counts against the format limits shared
// by both encoders.
func checkEncodable(m *BlockMesh) error {
	if uint64(len(m.Verts)) > formatCountMax {
		return fmt.Errorf("meshio: %d vertices: %w", len(m.Verts), ErrMeshTooLarge)
	}
	if uint64(len(m.Cells)) > formatCountMax {
		return fmt.Errorf("meshio: %d cells: %w", len(m.Cells), ErrMeshTooLarge)
	}
	for i := range m.Cells {
		c := &m.Cells[i]
		if uint64(len(c.Faces)) > formatCountMax {
			return fmt.Errorf("meshio: cell %d with %d faces: %w", i, len(c.Faces), ErrMeshTooLarge)
		}
		for fi := range c.Faces {
			if uint64(len(c.Faces[fi].Verts)) > formatCountMax {
				return fmt.Errorf("meshio: cell %d face %d with %d vertices: %w",
					i, fi, len(c.Faces[fi].Verts), ErrMeshTooLarge)
			}
		}
	}
	return nil
}

// Binary block format (little-endian):
//
//	magic    uint64
//	extents  6 x float64
//	nVerts   uint64, then nVerts x 3 float64
//	nCells   uint64
//	particles nCells x 3 float64
//	ids       nCells x int64
//	volumes   nCells x float64
//	areas     nCells x float64
//	complete  nCells x byte
//	per cell: nFaces uint32, per face: neighbor int64, nVerts uint32,
//	          verts nVerts x uint32

const meshMagic uint64 = 0x744d455348763101 // "tMESHv1" + 0x01

type writer struct {
	buf bytes.Buffer
	err error
}

func (w *writer) u64(v uint64) { w.write(v) }
func (w *writer) i64(v int64)  { w.write(v) }
func (w *writer) u32(v uint32) { w.write(v) }
func (w *writer) f64(v float64) {
	w.write(math.Float64bits(v))
}
func (w *writer) vec(v geom.Vec3) { w.f64(v.X); w.f64(v.Y); w.f64(v.Z) }
func (w *writer) b(v bool) {
	var x byte
	if v {
		x = 1
	}
	w.write(x)
}
func (w *writer) write(v any) {
	if w.err == nil {
		w.err = binary.Write(&w.buf, binary.LittleEndian, v)
	}
}

// Encode serializes the block mesh in the v1 format.
func (m *BlockMesh) Encode() ([]byte, error) {
	if err := checkEncodable(m); err != nil {
		return nil, err
	}
	w := &writer{}
	w.u64(meshMagic)
	w.vec(m.Extents.Min)
	w.vec(m.Extents.Max)
	w.u64(uint64(len(m.Verts)))
	for _, v := range m.Verts {
		w.vec(v)
	}
	n := m.NumCells()
	if len(m.ParticleIDs) != n || len(m.Volumes) != n || len(m.Areas) != n ||
		len(m.Complete) != n || len(m.Cells) != n {
		return nil, fmt.Errorf("meshio: inconsistent block arrays (cells=%d ids=%d vol=%d area=%d compl=%d conn=%d)",
			n, len(m.ParticleIDs), len(m.Volumes), len(m.Areas), len(m.Complete), len(m.Cells))
	}
	w.u64(uint64(n))
	for _, p := range m.Particles {
		w.vec(p)
	}
	for _, id := range m.ParticleIDs {
		w.i64(id)
	}
	for _, v := range m.Volumes {
		w.f64(v)
	}
	for _, a := range m.Areas {
		w.f64(a)
	}
	for _, c := range m.Complete {
		w.b(c)
	}
	for _, c := range m.Cells {
		w.u32(uint32(len(c.Faces)))
		for _, f := range c.Faces {
			w.i64(f.Neighbor)
			w.u32(uint32(len(f.Verts)))
			for _, vi := range f.Verts {
				w.u32(uint32(vi))
			}
		}
	}
	if w.err != nil {
		return nil, w.err
	}
	return w.buf.Bytes(), nil
}

type reader struct {
	buf *bytes.Reader
	err error
}

func (r *reader) u64() uint64 {
	var v uint64
	r.read(&v)
	return v
}
func (r *reader) i64() int64 {
	var v int64
	r.read(&v)
	return v
}
func (r *reader) u32() uint32 {
	var v uint32
	r.read(&v)
	return v
}
func (r *reader) f64() float64 {
	var v uint64
	r.read(&v)
	return math.Float64frombits(v)
}
func (r *reader) vec() geom.Vec3 {
	return geom.Vec3{X: r.f64(), Y: r.f64(), Z: r.f64()}
}
func (r *reader) b() bool {
	var v byte
	r.read(&v)
	return v != 0
}
func (r *reader) read(v any) {
	if r.err == nil {
		r.err = binary.Read(r.buf, binary.LittleEndian, v)
	}
}

// DecodeBlockMesh parses a block produced by either encoder: the first
// eight bytes select the v1 path (kept so old artifacts stay readable)
// or the versioned v2 container.
func DecodeBlockMesh(data []byte) (*BlockMesh, error) {
	if len(data) >= 8 && binary.LittleEndian.Uint64(data) == meshMagicFmt {
		return decodeV2Single(data)
	}
	r := &reader{buf: bytes.NewReader(data)}
	if magic := r.u64(); magic != meshMagic {
		return nil, fmt.Errorf("meshio: bad magic %#x", magic)
	}
	m := &BlockMesh{}
	m.Extents.Min = r.vec()
	m.Extents.Max = r.vec()
	nv := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if nv > uint64(len(data)) {
		return nil, fmt.Errorf("meshio: implausible vertex count %d", nv)
	}
	m.Verts = make([]geom.Vec3, nv)
	for i := range m.Verts {
		m.Verts[i] = r.vec()
	}
	nc := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if nc > uint64(len(data)) {
		return nil, fmt.Errorf("meshio: implausible cell count %d", nc)
	}
	m.Particles = make([]geom.Vec3, nc)
	for i := range m.Particles {
		m.Particles[i] = r.vec()
	}
	m.ParticleIDs = make([]int64, nc)
	for i := range m.ParticleIDs {
		m.ParticleIDs[i] = r.i64()
	}
	m.Volumes = make([]float64, nc)
	for i := range m.Volumes {
		m.Volumes[i] = r.f64()
	}
	m.Areas = make([]float64, nc)
	for i := range m.Areas {
		m.Areas[i] = r.f64()
	}
	m.Complete = make([]bool, nc)
	for i := range m.Complete {
		m.Complete[i] = r.b()
	}
	m.Cells = make([]CellConn, nc)
	for i := range m.Cells {
		nf := r.u32()
		if r.err != nil {
			return nil, r.err
		}
		if uint64(nf) > uint64(len(data)) {
			return nil, fmt.Errorf("meshio: implausible face count %d", nf)
		}
		faces := make([]FaceConn, nf)
		for fi := range faces {
			faces[fi].Neighbor = r.i64()
			nfv := r.u32()
			if r.err != nil {
				return nil, r.err
			}
			if uint64(nfv) > nv {
				return nil, fmt.Errorf("meshio: face with %d vertices exceeds pool %d", nfv, nv)
			}
			vs := make([]int32, nfv)
			for vi := range vs {
				x := r.u32()
				if uint64(x) >= nv {
					return nil, fmt.Errorf("meshio: vertex index %d out of range", x)
				}
				vs[vi] = int32(x)
			}
			faces[fi].Verts = vs
		}
		m.Cells[i].Faces = faces
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.buf.Len() != 0 {
		return nil, fmt.Errorf("meshio: %d trailing bytes", r.buf.Len())
	}
	return m, nil
}

package meshio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// Mesh interchange format v2: the compact on-disk encoding behind
// out-of-core artifacts (per-step block files, checkpoints). Unlike v1,
// the magic identifies only the container family and an explicit
// version field selects the layout, so future revisions do not need a
// new magic. A v2 file is a *stream* of self-delimited block frames —
// the Encoder/Decoder pair below reads and writes one block at a time
// and never materializes a whole merged mesh.
//
// Stream layout (little-endian):
//
//	magic    uint64 ("tMESHfmt")
//	version  uint32 (currently 2)
//	frames:  marker 0x01, bodyLen uvarint, body
//	end:     marker 0x00
//
// Block body:
//
//	extents   6 x float64
//	nVerts    uvarint; if nVerts > 0:
//	  origin  3 x float64   (per-axis quantization origin = min coord)
//	  exp     3 x int32     (per-axis power-of-two step exponent)
//	  qverts  nVerts x 3 x uint32
//	nCells    uvarint
//	sites     nCells x 3 x float64   (exact — the canonical-weld input)
//	ids       zigzag-varint deltas (first absolute)
//	volumes   nCells x float64
//	areas     nCells x float64
//	complete  ceil(nCells/8) bytes, bit i = cell i complete
//	cells:    per cell: nFaces uvarint; per face: neighbor zigzag
//	          varint, nVerts uvarint, vertex indices as zigzag-varint
//	          deltas (first absolute)
//
// Positions are quantized to a 32-bit grid whose step is a power of
// two (step = 2^exp, exp = ilogb(span)-31): power-of-two steps make
// dequantize→requantize reproduce the same grid indices, so
// encode→decode→encode is byte-stable. Quantization perturbs only the
// *stored* vertex coordinates; cell sites stay exact float64, and
// MergeCanonical re-derives every merged vertex from site bisector
// planes — never from stored coordinates — which is why a v2 round
// trip yields canonical merged bytes identical to the v1 path.

const meshMagicFmt uint64 = 0x744d455348666d74 // "tMESHfmt"

// meshFormatV2 is the version field value for the layout above.
const meshFormatV2 uint32 = 2

// maxV2Frame bounds a frame body so a corrupt length cannot drive a
// huge allocation before any payload validation runs.
const maxV2Frame = int64(1) << 31

// quantGrid is one axis's quantization frame.
type quantGrid struct {
	origin float64
	exp    int32
}

func (g quantGrid) step() float64 { return math.Ldexp(1, int(g.exp)) }

// gridFor derives the quantization frame of one coordinate axis: the
// origin is the exact minimum (so the minimal vertex round-trips
// bit-for-bit) and the step is the power of two putting the span just
// inside 32 bits.
func gridFor(lo, hi float64) quantGrid {
	span := hi - lo
	if !(span > 0) || math.IsInf(span, 0) {
		return quantGrid{origin: lo, exp: 0}
	}
	return quantGrid{origin: lo, exp: int32(math.Ilogb(span)) - 31}
}

func (g quantGrid) quantize(x float64) uint32 {
	q := math.Round((x - g.origin) / g.step())
	if q < 0 {
		return 0
	}
	if q > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(q)
}

func (g quantGrid) dequantize(q uint32) float64 {
	return g.origin + float64(q)*g.step()
}

type v2Writer struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *v2Writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *v2Writer) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}
func (w *v2Writer) i32(v int32) { w.u32(uint32(v)) }
func (w *v2Writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *v2Writer) vec(v geom.Vec3) { w.f64(v.X); w.f64(v.Y); w.f64(v.Z) }
func (w *v2Writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}
func (w *v2Writer) svarint(v int64) {
	w.uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

// encodeV2Body serializes m as one v2 block body (no stream framing).
func encodeV2Body(m *BlockMesh) ([]byte, error) {
	if err := checkEncodable(m); err != nil {
		return nil, err
	}
	n := m.NumCells()
	if len(m.ParticleIDs) != n || len(m.Volumes) != n || len(m.Areas) != n ||
		len(m.Complete) != n || len(m.Cells) != n {
		return nil, fmt.Errorf("meshio: inconsistent block arrays (cells=%d ids=%d vol=%d area=%d compl=%d conn=%d)",
			n, len(m.ParticleIDs), len(m.Volumes), len(m.Areas), len(m.Complete), len(m.Cells))
	}
	w := &v2Writer{buf: make([]byte, 0, 64+12*len(m.Verts)+64*n)}
	w.vec(m.Extents.Min)
	w.vec(m.Extents.Max)
	w.uvarint(uint64(len(m.Verts)))
	if len(m.Verts) > 0 {
		var grids [3]quantGrid
		for a := 0; a < 3; a++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range m.Verts {
				c := v.Component(a)
				lo = math.Min(lo, c)
				hi = math.Max(hi, c)
			}
			grids[a] = gridFor(lo, hi)
		}
		for a := 0; a < 3; a++ {
			w.f64(grids[a].origin)
		}
		for a := 0; a < 3; a++ {
			w.i32(grids[a].exp)
		}
		for _, v := range m.Verts {
			w.u32(grids[0].quantize(v.X))
			w.u32(grids[1].quantize(v.Y))
			w.u32(grids[2].quantize(v.Z))
		}
	}
	w.uvarint(uint64(n))
	for _, p := range m.Particles {
		w.vec(p)
	}
	var prevID int64
	for i, id := range m.ParticleIDs {
		if i == 0 {
			w.svarint(id)
		} else {
			w.svarint(id - prevID)
		}
		prevID = id
	}
	for _, v := range m.Volumes {
		w.f64(v)
	}
	for _, a := range m.Areas {
		w.f64(a)
	}
	bits := make([]byte, (n+7)/8)
	for i, c := range m.Complete {
		if c {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	w.buf = append(w.buf, bits...)
	for _, c := range m.Cells {
		w.uvarint(uint64(len(c.Faces)))
		for _, f := range c.Faces {
			w.svarint(f.Neighbor)
			w.uvarint(uint64(len(f.Verts)))
			var prev int32
			for i, vi := range f.Verts {
				if i == 0 {
					w.svarint(int64(vi))
				} else {
					w.svarint(int64(vi) - int64(prev))
				}
				prev = vi
			}
		}
	}
	return w.buf, nil
}

type v2Reader struct {
	data []byte
	off  int
	err  error
}

func (r *v2Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("meshio: "+format, args...)
	}
}

func (r *v2Reader) remaining() int { return len(r.data) - r.off }

func (r *v2Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.fail("v2 body truncated at offset %d", r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *v2Reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *v2Reader) i32() int32 { return int32(r.u32()) }
func (r *v2Reader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
func (r *v2Reader) vec() geom.Vec3 {
	return geom.Vec3{X: r.f64(), Y: r.f64(), Z: r.f64()}
}
func (r *v2Reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}
func (r *v2Reader) svarint() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// decodeV2Body parses one v2 block body, consuming all of data.
func decodeV2Body(data []byte) (*BlockMesh, error) {
	r := &v2Reader{data: data}
	m := &BlockMesh{}
	m.Extents.Min = r.vec()
	m.Extents.Max = r.vec()
	nv := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nv > formatCountMax || nv > uint64(r.remaining()/12)+1 {
		return nil, fmt.Errorf("meshio: implausible vertex count %d", nv)
	}
	if nv > 0 {
		var grids [3]quantGrid
		for a := 0; a < 3; a++ {
			grids[a].origin = r.f64()
		}
		for a := 0; a < 3; a++ {
			grids[a].exp = r.i32()
		}
		if r.err != nil {
			return nil, r.err
		}
		for a := 0; a < 3; a++ {
			if e := grids[a].exp; e < -1100 || e > 1024 || math.IsNaN(grids[a].origin) {
				return nil, fmt.Errorf("meshio: malformed quantization grid (origin %g, exp %d)",
					grids[a].origin, e)
			}
		}
		m.Verts = make([]geom.Vec3, nv)
		for i := range m.Verts {
			m.Verts[i] = geom.Vec3{
				X: grids[0].dequantize(r.u32()),
				Y: grids[1].dequantize(r.u32()),
				Z: grids[2].dequantize(r.u32()),
			}
		}
	}
	nc := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nc > formatCountMax || nc > uint64(r.remaining()/24)+1 {
		return nil, fmt.Errorf("meshio: implausible cell count %d", nc)
	}
	m.Particles = make([]geom.Vec3, nc)
	for i := range m.Particles {
		m.Particles[i] = r.vec()
	}
	m.ParticleIDs = make([]int64, nc)
	var prevID int64
	for i := range m.ParticleIDs {
		d := r.svarint()
		if i == 0 {
			prevID = d
		} else {
			prevID += d
		}
		m.ParticleIDs[i] = prevID
	}
	m.Volumes = make([]float64, nc)
	for i := range m.Volumes {
		m.Volumes[i] = r.f64()
	}
	m.Areas = make([]float64, nc)
	for i := range m.Areas {
		m.Areas[i] = r.f64()
	}
	bits := r.take(int((nc + 7) / 8))
	if r.err != nil {
		return nil, r.err
	}
	m.Complete = make([]bool, nc)
	for i := range m.Complete {
		m.Complete[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	m.Cells = make([]CellConn, nc)
	for i := range m.Cells {
		nf := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if nf > uint64(r.remaining())+1 {
			return nil, fmt.Errorf("meshio: implausible face count %d", nf)
		}
		faces := make([]FaceConn, nf)
		for fi := range faces {
			faces[fi].Neighbor = r.svarint()
			nfv := r.uvarint()
			if r.err != nil {
				return nil, r.err
			}
			if nfv > nv {
				return nil, fmt.Errorf("meshio: face with %d vertices exceeds pool %d", nfv, nv)
			}
			vs := make([]int32, nfv)
			var prev int64
			for vi := range vs {
				d := r.svarint()
				if vi == 0 {
					prev = d
				} else {
					prev += d
				}
				if prev < 0 || uint64(prev) >= nv {
					return nil, fmt.Errorf("meshio: vertex index %d out of range", prev)
				}
				vs[vi] = int32(prev)
			}
			faces[fi].Verts = vs
		}
		m.Cells[i].Faces = faces
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("meshio: %d trailing bytes in v2 body", r.remaining())
	}
	return m, nil
}

// Encoder writes a v2 mesh stream one block at a time: the stream
// header goes out before the first frame and Close terminates the
// stream, so arbitrarily many blocks pass through without the encoder
// ever holding more than one encoded body.
type Encoder struct {
	w       io.Writer
	err     error
	started bool
	closed  bool
	tmp     [binary.MaxVarintLen64]byte
}

// NewEncoder returns an Encoder writing a v2 stream to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w}
}

func (e *Encoder) header() {
	if e.started || e.err != nil {
		return
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], meshMagicFmt)
	binary.LittleEndian.PutUint32(hdr[8:], meshFormatV2)
	_, e.err = e.w.Write(hdr[:])
	e.started = true
}

// WriteBlock appends one block frame to the stream.
func (e *Encoder) WriteBlock(m *BlockMesh) error {
	if e.closed {
		return fmt.Errorf("meshio: WriteBlock on closed Encoder")
	}
	if e.header(); e.err != nil {
		return e.err
	}
	body, err := encodeV2Body(m)
	if err != nil {
		e.err = err
		return err
	}
	n := binary.PutUvarint(e.tmp[:], uint64(len(body)))
	frame := make([]byte, 0, 1+n+len(body))
	frame = append(frame, 1)
	frame = append(frame, e.tmp[:n]...)
	frame = append(frame, body...)
	if _, err := e.w.Write(frame); err != nil {
		e.err = err
		return err
	}
	return nil
}

// Close terminates the stream with the end marker. It does not close
// the underlying writer.
func (e *Encoder) Close() error {
	if e.closed {
		return e.err
	}
	if e.header(); e.err != nil {
		return e.err
	}
	if _, err := e.w.Write([]byte{0}); err != nil {
		e.err = err
	}
	e.closed = true
	return e.err
}

// EncodeV2 serializes m as a complete single-block v2 stream — the
// compact counterpart of Encode, readable by DecodeBlockMesh and
// Decoder alike.
func EncodeV2(m *BlockMesh) ([]byte, error) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.WriteBlock(m); err != nil {
		return nil, err
	}
	if err := e.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decoder reads a v2 mesh stream one block at a time.
type Decoder struct {
	r        *bufio.Reader
	err      error
	started  bool
	done     bool
	maxFrame int64
}

// NewDecoder returns a Decoder reading a v2 stream from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r), maxFrame: maxV2Frame}
}

// Next returns the next block of the stream, or io.EOF after the end
// marker. Any format violation is returned as an error and sticks.
func (d *Decoder) Next() (*BlockMesh, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.done {
		return nil, io.EOF
	}
	if !d.started {
		var hdr [12]byte
		if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
			return nil, d.sticky(fmt.Errorf("meshio: v2 stream header: %w", err))
		}
		if magic := binary.LittleEndian.Uint64(hdr[0:]); magic != meshMagicFmt {
			return nil, d.sticky(fmt.Errorf("meshio: bad magic %#x", magic))
		}
		if ver := binary.LittleEndian.Uint32(hdr[8:]); ver != meshFormatV2 {
			return nil, d.sticky(fmt.Errorf("meshio: unsupported mesh format version %d", ver))
		}
		d.started = true
	}
	marker, err := d.r.ReadByte()
	if err != nil {
		return nil, d.sticky(fmt.Errorf("meshio: v2 stream marker: %w", err))
	}
	switch marker {
	case 0:
		d.done = true
		return nil, io.EOF
	case 1:
	default:
		return nil, d.sticky(fmt.Errorf("meshio: bad v2 frame marker %#x", marker))
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, d.sticky(fmt.Errorf("meshio: v2 frame length: %w", err))
	}
	if int64(n) > d.maxFrame || n > uint64(maxV2Frame) {
		return nil, d.sticky(fmt.Errorf("meshio: implausible v2 frame length %d", n))
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(d.r, body); err != nil {
		return nil, d.sticky(fmt.Errorf("meshio: v2 frame body: %w", err))
	}
	m, err := decodeV2Body(body)
	if err != nil {
		return nil, d.sticky(err)
	}
	return m, nil
}

func (d *Decoder) sticky(err error) error {
	d.err = err
	return err
}

// decodeV2Single parses a complete single-block v2 stream, rejecting
// multi-block streams and trailing bytes (the strictness
// DecodeBlockMesh promises).
func decodeV2Single(data []byte) (*BlockMesh, error) {
	d := NewDecoder(bytes.NewReader(data))
	d.maxFrame = int64(len(data))
	m, err := d.Next()
	if err == io.EOF {
		return nil, fmt.Errorf("meshio: empty v2 stream")
	}
	if err != nil {
		return nil, err
	}
	if _, err := d.Next(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("meshio: v2 container holds more than one block")
		}
		return nil, err
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("meshio: trailing bytes after v2 stream")
	}
	return m, nil
}

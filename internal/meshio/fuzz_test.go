package meshio

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// Decoder robustness: arbitrary corruption must produce errors, never
// panics or runaway allocations. Go's fuzzing engine uses these seeds
// during normal `go test` runs and explores further under `go test -fuzz`.

func FuzzDecodeBlockMesh(f *testing.F) {
	cells := buildTestCells(f, 3, 3, 124)
	m := BuildBlockMesh(cells, geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3)), 0)
	valid, err := m.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x31, 0x76, 0x48, 0x53, 0x45, 0x4d, 0x74}) // v1 magic only
	validV2, err := EncodeV2(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validV2)
	f.Add(validV2[:len(validV2)/2])
	f.Add(validV2[:13])                                           // header + frame marker, no body
	f.Add([]byte{0x74, 0x6d, 0x45, 0x53, 0x48, 0x66, 0x6d, 0x74}) // v2 magic only
	badVer := append([]byte(nil), validV2...)
	badVer[8] = 0xff // unsupported version
	f.Add(badVer)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBlockMesh(data)
		if err == nil {
			// Decoded meshes must be internally consistent.
			n := m.NumCells()
			if len(m.ParticleIDs) != n || len(m.Volumes) != n || len(m.Cells) != n {
				t.Fatal("inconsistent decode accepted")
			}
			for _, c := range m.Cells {
				for _, fc := range c.Faces {
					for _, vi := range fc.Verts {
						if int(vi) >= len(m.Verts) || vi < 0 {
							t.Fatal("out-of-range vertex index accepted")
						}
					}
				}
			}
		}
	})
}

func FuzzDecodeAugmented(f *testing.F) {
	valid, err := EncodeAugmented([]AugmentedParticle{
		{ID: 1, Pos: geom.V(1, 2, 3), Volume: 0.5, Density: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeAugmented(data)
		if err == nil && len(ps) > len(data)/56+1 {
			t.Fatal("decoded more particles than the data can hold")
		}
	})
}

// TestDecodeRandomMutations complements fuzzing with deterministic
// bit-flip coverage of a real encoded block.
func TestDecodeRandomMutations(t *testing.T) {
	cells := buildTestCells(t, 3, 3, 122)
	m := BuildBlockMesh(cells, geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3)), 0)
	valid, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 300; i++ {
		data := append([]byte(nil), valid...)
		// Flip 1-4 random bytes and/or truncate.
		for k := 0; k < 1+rng.Intn(4); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(3) == 0 {
			data = data[:rng.Intn(len(data))]
		}
		// Must not panic; errors are fine, and occasional successful
		// decodes (mutation in float payload) must stay consistent.
		if m2, err := DecodeBlockMesh(data); err == nil {
			if m2.NumCells() != len(m2.Cells) {
				t.Fatal("inconsistent lucky decode")
			}
		}
	}
}

package meshio

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/voronoi"
)

// buildTestCells computes a small periodic tessellation to exercise the
// data model with realistic cells.
func buildTestCells(t testing.TB, n int, L float64, seed int64) []*voronoi.Cell {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := L / float64(n)
	var pts []geom.Vec3
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pts = append(pts, geom.V(
					(float64(x)+0.5)*h+(rng.Float64()-0.5)*0.8*h,
					(float64(y)+0.5)*h+(rng.Float64()-0.5)*0.8*h,
					(float64(z)+0.5)*h+(rng.Float64()-0.5)*0.8*h))
			}
		}
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	cells, err := voronoi.ComputePeriodic(pts, ids, L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestBuildBlockMeshBasics(t *testing.T) {
	cells := buildTestCells(t, 4, 4, 68)
	ext := geom.NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4))
	m := BuildBlockMesh(cells, ext, 0)
	if m.NumCells() != len(cells) {
		t.Fatalf("NumCells = %d, want %d", m.NumCells(), len(cells))
	}
	for i, c := range cells {
		if math.Abs(m.Volumes[i]-c.Volume()) > 1e-12 {
			t.Fatalf("cell %d volume mismatch", i)
		}
		if m.ParticleIDs[i] != c.SiteID {
			t.Fatalf("cell %d id mismatch", i)
		}
		if len(m.Cells[i].Faces) != len(c.Faces) {
			t.Fatalf("cell %d face count mismatch", i)
		}
	}
	// Vertex welding: total references exceed unique vertices (sharing).
	s := m.ComputeStats()
	if s.VertSharing <= 1.5 {
		t.Errorf("vertex sharing = %v, expected well above 1 for a tessellation", s.VertSharing)
	}
	if s.FacesPerCell < 4 {
		t.Errorf("faces per cell = %v, implausibly low", s.FacesPerCell)
	}
	if s.VertsPerFace < 3 {
		t.Errorf("verts per face = %v", s.VertsPerFace)
	}
}

func TestWeldingPreservesGeometry(t *testing.T) {
	// Face loops must reference vertices that match the source cell's
	// coordinates to weld tolerance.
	cells := buildTestCells(t, 3, 3, 69)
	ext := geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3))
	m := BuildBlockMesh(cells, ext, 0)
	for ci, c := range cells {
		for fi, f := range c.Faces {
			mf := m.Cells[ci].Faces[fi]
			if len(mf.Verts) != len(f.Loop) {
				t.Fatalf("cell %d face %d length mismatch", ci, fi)
			}
			for k, vi := range f.Loop {
				orig := c.Verts[vi]
				stored := m.Verts[mf.Verts[k]]
				if orig.Dist(stored) > 1e-5 {
					t.Fatalf("cell %d face %d vertex %d moved by %v", ci, fi, k, orig.Dist(stored))
				}
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cells := buildTestCells(t, 4, 4, 70)
	ext := geom.NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4))
	m := BuildBlockMesh(cells, ext, 0)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeBlockMesh(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Extents != m.Extents {
		t.Error("extents mismatch")
	}
	if len(m2.Verts) != len(m.Verts) || len(m2.Cells) != len(m.Cells) {
		t.Fatalf("shape mismatch: %d/%d verts, %d/%d cells",
			len(m2.Verts), len(m.Verts), len(m2.Cells), len(m.Cells))
	}
	for i := range m.Verts {
		if m.Verts[i] != m2.Verts[i] {
			t.Fatalf("vertex %d mismatch", i)
		}
	}
	for i := range m.Cells {
		if m.ParticleIDs[i] != m2.ParticleIDs[i] || m.Volumes[i] != m2.Volumes[i] ||
			m.Areas[i] != m2.Areas[i] || m.Complete[i] != m2.Complete[i] {
			t.Fatalf("cell %d scalar mismatch", i)
		}
		if len(m.Cells[i].Faces) != len(m2.Cells[i].Faces) {
			t.Fatalf("cell %d face count mismatch", i)
		}
		for fi := range m.Cells[i].Faces {
			f1, f2 := m.Cells[i].Faces[fi], m2.Cells[i].Faces[fi]
			if f1.Neighbor != f2.Neighbor || len(f1.Verts) != len(f2.Verts) {
				t.Fatalf("cell %d face %d mismatch", i, fi)
			}
			for k := range f1.Verts {
				if f1.Verts[k] != f2.Verts[k] {
					t.Fatalf("cell %d face %d vert %d mismatch", i, fi, k)
				}
			}
		}
	}
}

func TestEncodedSizeMatchesAccounting(t *testing.T) {
	cells := buildTestCells(t, 4, 4, 71)
	ext := geom.NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4))
	m := BuildBlockMesh(cells, ext, 0)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := m.ComputeStats()
	// Accounting covers everything except the 8-byte magic.
	if int64(len(data)) != s.TotalBytes+8 {
		t.Errorf("encoded %d bytes, accounting %d + 8 magic", len(data), s.TotalBytes)
	}
	// The paper: connectivity dominates the output (~93% of bytes for a
	// full tessellation). Welded vertices keep geometry well under half.
	if s.ConnectivityBytes <= s.GeometryBytes {
		t.Errorf("connectivity (%d) should dominate geometry (%d)",
			s.ConnectivityBytes, s.GeometryBytes)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	cells := buildTestCells(t, 3, 3, 72)
	ext := geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3))
	m := BuildBlockMesh(cells, ext, 0)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlockMesh(data[:10]); err == nil {
		t.Error("truncated block accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := DecodeBlockMesh(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeBlockMesh(append(data, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodeValidatesShape(t *testing.T) {
	m := &BlockMesh{Particles: make([]geom.Vec3, 2), ParticleIDs: make([]int64, 1)}
	if _, err := m.Encode(); err == nil {
		t.Error("inconsistent arrays accepted")
	}
}

func TestEmptyBlockRoundTrip(t *testing.T) {
	m := &BlockMesh{Extents: geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeBlockMesh(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumCells() != 0 || len(m2.Verts) != 0 {
		t.Error("empty block decoded non-empty")
	}
}

func TestWriteVTK(t *testing.T) {
	cells := buildTestCells(t, 3, 3, 73)
	ext := geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3))
	m := BuildBlockMesh(cells, ext, 0)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, []*BlockMesh{m, m}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# vtk DataFile", "DATASET POLYDATA", "POINTS", "POLYGONS", "cell_volume"} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// Point count doubles with two meshes.
	i := strings.Index(out, "POINTS ")
	var np int
	var typ string
	if _, err := fmt.Sscanf(out[i:], "POINTS %d %s", &np, &typ); err != nil {
		t.Fatal(err)
	}
	if np != 2*len(m.Verts) {
		t.Errorf("POINTS %d, want %d", np, 2*len(m.Verts))
	}
}

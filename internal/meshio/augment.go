package meshio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
)

// AugmentedParticle is a particle position annotated with its Voronoi cell
// volume and the implied local density — the paper's proposed augmented
// output (Sec. V: "augment the output of particle positions with the cell
// volume or density at each site as an indication of the density of the
// region surrounding each particle").
type AugmentedParticle struct {
	ID      int64
	Pos     geom.Vec3
	Volume  float64
	Density float64 // unit mass / cell volume
}

// AugmentParticles builds the augmented particle list from a block mesh.
func AugmentParticles(m *BlockMesh) []AugmentedParticle {
	out := make([]AugmentedParticle, m.NumCells())
	for i := range out {
		d := 0.0
		if m.Volumes[i] > 0 {
			d = 1 / m.Volumes[i]
		}
		out[i] = AugmentedParticle{
			ID:      m.ParticleIDs[i],
			Pos:     m.Particles[i],
			Volume:  m.Volumes[i],
			Density: d,
		}
	}
	return out
}

const augmentMagic uint64 = 0x7041554756313000 // "pAUGV10"

// EncodeAugmented serializes augmented particles (56 bytes each plus an
// 16-byte header) — 40% more than HACC's 40-byte checkpoint record, far
// below the ~450 bytes of a full tessellation, as the paper's size
// discussion anticipates.
func EncodeAugmented(ps []AugmentedParticle) ([]byte, error) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, augmentMagic); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint64(len(ps))); err != nil {
		return nil, err
	}
	for _, p := range ps {
		rec := [7]uint64{
			uint64(p.ID),
			math.Float64bits(p.Pos.X),
			math.Float64bits(p.Pos.Y),
			math.Float64bits(p.Pos.Z),
			math.Float64bits(p.Volume),
			math.Float64bits(p.Density),
			0, // reserved
		}
		// Pack: id + 3 coords + volume + density (48 bytes of payload);
		// the reserved word keeps records 8-aligned at 56 bytes.
		if err := binary.Write(&buf, binary.LittleEndian, rec); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeAugmented parses EncodeAugmented output.
func DecodeAugmented(data []byte) ([]AugmentedParticle, error) {
	r := bytes.NewReader(data)
	var magic, n uint64
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != augmentMagic {
		return nil, fmt.Errorf("meshio: bad augmented-particle magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > uint64(len(data))/56+1 {
		return nil, fmt.Errorf("meshio: implausible particle count %d", n)
	}
	out := make([]AugmentedParticle, n)
	for i := range out {
		var rec [7]uint64
		if err := binary.Read(r, binary.LittleEndian, &rec); err != nil {
			return nil, err
		}
		out[i] = AugmentedParticle{
			ID: int64(rec[0]),
			Pos: geom.Vec3{
				X: math.Float64frombits(rec[1]),
				Y: math.Float64frombits(rec[2]),
				Z: math.Float64frombits(rec[3]),
			},
			Volume:  math.Float64frombits(rec[4]),
			Density: math.Float64frombits(rec[5]),
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("meshio: %d trailing bytes", r.Len())
	}
	return out, nil
}

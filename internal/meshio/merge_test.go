package meshio_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/meshio"
)

func mergeFixture(t *testing.T, blocks int) ([]*meshio.BlockMesh, geom.Box) {
	t.Helper()
	const L = 8.0
	rng := rand.New(rand.NewSource(11))
	h := L / 5
	var ps []diy.Particle
	id := int64(0)
	for z := 0; z < 5; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				ps = append(ps, diy.Particle{ID: id, Pos: geom.V(
					(float64(x)+0.5)*h+(rng.Float64()-0.5)*0.6*h,
					(float64(y)+0.5)*h+(rng.Float64()-0.5)*0.6*h,
					(float64(z)+0.5)*h+(rng.Float64()-0.5)*0.6*h)})
				id++
			}
		}
	}
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	out, err := core.Run(core.Config{Domain: domain, Periodic: true, GhostSize: 3}, ps, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return out.Meshes, domain
}

// Merging an already-canonical mesh must be a fixed point: the canonical
// vertices are exactly the three-plane intersections the merge re-derives,
// so a second pass reproduces the encoding byte for byte.
func TestMergeCanonicalIdempotent(t *testing.T) {
	meshes, domain := mergeFixture(t, 2)
	m1, err := meshio.MergeCanonical(meshes, domain, true)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := m1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := meshio.MergeCanonical([]*meshio.BlockMesh{m1}, domain, true)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Errorf("second merge changed the encoding (%d vs %d bytes)", len(e2), len(e1))
	}
}

// The canonical mesh must preserve topology counts and keep the shared
// vertex pool welded (each Voronoi vertex is shared by several cells).
func TestMergeCanonicalShape(t *testing.T) {
	meshes, domain := mergeFixture(t, 8)
	m, err := meshio.MergeCanonical(meshes, domain, true)
	if err != nil {
		t.Fatal(err)
	}
	var cells int
	for _, bm := range meshes {
		cells += bm.NumCells()
	}
	if m.NumCells() != cells {
		t.Fatalf("merged %d cells, want %d", m.NumCells(), cells)
	}
	st := m.ComputeStats()
	if st.VertSharing < 3 {
		t.Errorf("vertex sharing %.2f: canonical weld failed to merge shared vertices", st.VertSharing)
	}
	for i := 1; i < len(m.ParticleIDs); i++ {
		if m.ParticleIDs[i-1] >= m.ParticleIDs[i] {
			t.Fatalf("cells not sorted by particle ID at %d", i)
		}
	}
	for i, v := range m.Volumes {
		if v <= 0 {
			t.Errorf("cell %d: non-positive canonical volume %g", i, v)
		}
		if m.Areas[i] <= 0 {
			t.Errorf("cell %d: non-positive canonical area %g", i, m.Areas[i])
		}
	}
}

func TestMergeCanonicalRejectsDuplicates(t *testing.T) {
	meshes, domain := mergeFixture(t, 2)
	if _, err := meshio.MergeCanonical([]*meshio.BlockMesh{meshes[0], meshes[0], meshes[1]}, domain, true); err == nil {
		t.Error("duplicate block accepted")
	}
}

func TestMergeCanonicalRejectsMissingNeighbor(t *testing.T) {
	meshes, domain := mergeFixture(t, 2)
	if _, err := meshio.MergeCanonical(meshes[:1], domain, true); err == nil {
		t.Error("partial tessellation accepted")
	}
}

func TestMergeCanonicalRejectsWallFaces(t *testing.T) {
	// A non-periodic run keeps wall-free interior cells only if incomplete
	// cells are retained; force wall faces in by keeping them.
	const L = 8.0
	var ps []diy.Particle
	id := int64(0)
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				ps = append(ps, diy.Particle{ID: id, Pos: geom.V(
					(float64(x)+0.5)*L/3, (float64(y)+0.5)*L/3, (float64(z)+0.5)*L/3)})
				id++
			}
		}
	}
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	out, err := core.Run(core.Config{Domain: domain, GhostSize: 2, KeepIncomplete: true}, ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := meshio.MergeCanonical(out.Meshes, domain, false); err == nil {
		t.Error("mesh with wall faces accepted")
	}
}

package meshio

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/geom"
)

// buildTestMesh wraps buildTestCells into an encoded-ready block mesh
// over the periodic [0, L)^3 box.
func buildTestMesh(t testing.TB, n int, L float64, seed int64) *BlockMesh {
	t.Helper()
	cells := buildTestCells(t, n, L, seed)
	return BuildBlockMesh(cells, geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)), 0)
}

// TestEncodeV2GoldenRoundTrip pins the v2 format's defining property:
// encode -> decode -> encode is byte-stable (the power-of-two
// quantization grid re-derives identically from dequantized vertices),
// and everything except vertex coordinates survives exactly.
func TestEncodeV2GoldenRoundTrip(t *testing.T) {
	m := buildTestMesh(t, 3, 3, 211)
	enc1, err := EncodeV2(m)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBlockMesh(enc1) // format-sniffed v2 path
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeV2(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encode->decode->encode not byte-stable (%d vs %d bytes)", len(enc1), len(enc2))
	}
	if dec.NumCells() != m.NumCells() || len(dec.Verts) != len(m.Verts) {
		t.Fatalf("decode shape: %d cells / %d verts, want %d / %d",
			dec.NumCells(), len(dec.Verts), m.NumCells(), len(m.Verts))
	}
	if dec.Extents != m.Extents {
		t.Errorf("extents %+v != %+v", dec.Extents, m.Extents)
	}
	for i := range m.Particles {
		// Sites are the canonical-weld input and must stay exact.
		if dec.Particles[i] != m.Particles[i] {
			t.Fatalf("site %d drifted: %+v != %+v", i, dec.Particles[i], m.Particles[i])
		}
		if dec.ParticleIDs[i] != m.ParticleIDs[i] {
			t.Fatalf("id %d: %d != %d", i, dec.ParticleIDs[i], m.ParticleIDs[i])
		}
		if dec.Volumes[i] != m.Volumes[i] || dec.Areas[i] != m.Areas[i] {
			t.Fatalf("cell %d scalars drifted", i)
		}
		if dec.Complete[i] != m.Complete[i] {
			t.Fatalf("cell %d completeness flipped", i)
		}
		if len(dec.Cells[i].Faces) != len(m.Cells[i].Faces) {
			t.Fatalf("cell %d face count %d != %d", i, len(dec.Cells[i].Faces), len(m.Cells[i].Faces))
		}
	}
	// Quantization error is bounded by one grid step per axis.
	for i, v := range m.Verts {
		d := dec.Verts[i]
		span := m.Extents.Max.Sub(m.Extents.Min)
		for a := 0; a < 3; a++ {
			tol := span.Component(a) / (1 << 30)
			if diff := v.Component(a) - d.Component(a); diff > tol || diff < -tol {
				t.Fatalf("vert %d axis %d off by %g (tol %g)", i, a, diff, tol)
			}
		}
	}
}

// TestV2CanonicalMatchesV1 is the cross-version interchange guarantee:
// a v2 round trip feeds MergeCanonical the same sites as a v1 round
// trip, so the canonical merged bytes are identical even though v2
// quantizes stored vertex coordinates.
func TestV2CanonicalMatchesV1(t *testing.T) {
	m := buildTestMesh(t, 3, 3, 212)
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3))
	encV1, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	encV2, err := EncodeV2(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(encV2) >= len(encV1) {
		t.Errorf("v2 (%d bytes) not smaller than v1 (%d bytes)", len(encV2), len(encV1))
	}
	decV1, err := DecodeBlockMesh(encV1)
	if err != nil {
		t.Fatal(err)
	}
	decV2, err := DecodeBlockMesh(encV2)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := MergeCanonical([]*BlockMesh{decV1}, domain, true)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MergeCanonical([]*BlockMesh{decV2}, domain, true)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := m1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("canonical merged bytes differ between v1 and v2 round trips")
	}
}

// TestEncoderDecoderStream drives the streaming pair over a multi-block
// stream: every block round-trips to its own stable encoding, and the
// stream terminates cleanly with io.EOF.
func TestEncoderDecoderStream(t *testing.T) {
	meshes := []*BlockMesh{
		buildTestMesh(t, 2, 2, 213),
		buildTestMesh(t, 3, 3, 214),
		buildTestMesh(t, 2, 4, 215),
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	for _, m := range meshes {
		if err := e.WriteBlock(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBlock(meshes[0]); err == nil {
		t.Fatal("WriteBlock after Close accepted")
	}

	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	for i, want := range meshes {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		wb, err := EncodeV2(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := EncodeV2(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("block %d round trip not byte-stable", i)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after last block: %v, want io.EOF", err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("repeated Next after end: %v, want io.EOF", err)
	}
}

// TestErrMeshTooLarge pins the structured too-large error on both
// encoders by lowering the format limit to a synthetic value the test
// mesh exceeds.
func TestErrMeshTooLarge(t *testing.T) {
	old := formatCountMax
	formatCountMax = 8
	defer func() { formatCountMax = old }()
	m := buildTestMesh(t, 3, 3, 216) // 27 cells > 8
	if _, err := m.Encode(); !errors.Is(err, ErrMeshTooLarge) {
		t.Fatalf("v1 Encode: %v, want ErrMeshTooLarge", err)
	}
	if _, err := EncodeV2(m); !errors.Is(err, ErrMeshTooLarge) {
		t.Fatalf("EncodeV2: %v, want ErrMeshTooLarge", err)
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.WriteBlock(m); !errors.Is(err, ErrMeshTooLarge) {
		t.Fatalf("Encoder.WriteBlock: %v, want ErrMeshTooLarge", err)
	}
}

// TestDecodeV2Malformed sweeps the rejection surface: every proper
// prefix, a wrong version, trailing bytes, and a multi-block stream fed
// to the single-block entry point must all error without panicking.
func TestDecodeV2Malformed(t *testing.T) {
	m := buildTestMesh(t, 2, 2, 217)
	enc, err := EncodeV2(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBlockMesh(enc[:i]); err == nil {
			t.Fatalf("truncated stream of %d bytes accepted", i)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[8] = 3 // version field
	if _, err := DecodeBlockMesh(bad); err == nil {
		t.Fatal("unsupported version accepted")
	}
	if _, err := DecodeBlockMesh(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	var multi bytes.Buffer
	e := NewEncoder(&multi)
	if err := e.WriteBlock(m); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBlock(m); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlockMesh(multi.Bytes()); err == nil {
		t.Fatal("multi-block stream accepted by single-block decode")
	}
}

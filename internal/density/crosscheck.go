package density

import (
	"fmt"
	"sort"

	"repro/internal/multistream"
)

// CrossCheck compares a density Result against an independent multistream
// classification of the same snapshot. The two estimators share no code:
// DTFE reads density off the Delaunay tessellation of the evolved
// positions, while the multistream field counts phase-space sheet foldings
// on the initial lattice (the Kaehler phase-space-element construction).
// Physically, single-stream regions are voids that have never undergone
// shell crossing, so they must sit low in the DTFE density distribution —
// the accuracy cross-check EXPERIMENTS.md documents.
type CrossCheckResult struct {
	// SingleCells / MultiCells are the density sample cells classified
	// single-stream (void) and multi-stream (collapsed) respectively.
	SingleCells int `json:"single_cells"`
	MultiCells  int `json:"multi_cells"`
	// Medians of the DTFE density over each class.
	SingleMedian float64 `json:"single_median"`
	MultiMedian  float64 `json:"multi_median"`
	// SingleBelowMean is the fraction of single-stream cells whose DTFE
	// density is below the grid mean; a consistent pair of estimators
	// drives this toward 1.
	SingleBelowMean float64 `json:"single_below_mean"`
}

// Consistent reports whether the two estimators agree in the aggregate:
// single-stream (void) cells must read less dense than multi-stream cells
// on median, and most single-stream cells must be below the mean.
func (c *CrossCheckResult) Consistent() bool {
	if c.SingleCells == 0 || c.MultiCells == 0 {
		return false
	}
	return c.SingleMedian < c.MultiMedian && c.SingleBelowMean > 0.5
}

// CrossCheck evaluates the multistream field at every density sample cell
// and splits the DTFE grid by stream count. The Result's box must be the
// multistream field's periodic box.
func CrossCheck(res *Result, ms *multistream.Field) (*CrossCheckResult, error) {
	size := res.Box.Size()
	if res.Box.Min.X != 0 || res.Box.Min.Y != 0 || res.Box.Min.Z != 0 || size.X != ms.BoxSize {
		return nil, fmt.Errorf("density: cross-check box mismatch: grid over %v, multistream over [0,%v]^3",
			res.Box, ms.BoxSize)
	}
	n := res.GridN
	var single, multi []float64
	for k := 0; k < n; k++ {
		z := (float64(k) + 0.5) * size.Z / float64(n)
		for j := 0; j < n; j++ {
			y := (float64(j) + 0.5) * size.Y / float64(n)
			for i := 0; i < n; i++ {
				x := (float64(i) + 0.5) * size.X / float64(n)
				d := res.Grid[(k*n+j)*n+i]
				streams := ms.At(msCell(x, ms), msCell(y, ms), msCell(z, ms))
				if streams <= 1 {
					single = append(single, d)
				} else {
					multi = append(multi, d)
				}
			}
		}
	}
	out := &CrossCheckResult{SingleCells: len(single), MultiCells: len(multi)}
	out.SingleMedian = median(single)
	out.MultiMedian = median(multi)
	if len(single) > 0 {
		below := 0
		for _, d := range single {
			if d < res.Stats.Mean {
				below++
			}
		}
		out.SingleBelowMean = float64(below) / float64(len(single))
	}
	return out, nil
}

// msCell maps a box coordinate to the nearest multistream sample index.
func msCell(v float64, ms *multistream.Field) int {
	h := ms.BoxSize / float64(ms.M)
	c := int(v / h)
	return min(max(c, 0), ms.M-1)
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

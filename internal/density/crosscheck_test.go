package density

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/multistream"
	"repro/internal/nbody"
)

// The DTFE field and the multistream classification are independent
// estimators of the same dynamics; an evolved box must show single-stream
// (void) regions at low density percentiles.
func TestCrossCheckEvolvedBox(t *testing.T) {
	const ng = 8
	sim, err := nbody.New(nbody.DefaultConfig(ng))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		sim.StepOnce()
	}
	L := sim.Config.BoxSize

	cfg := periodicConfig(16, L)
	res, err := Compute(cfg, sim.Pos, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := multistream.Compute(sim.Pos, ng, L, 2*ng)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Summarize().ThreePlus == 0 {
		t.Skip("box not evolved enough to shell-cross; cross-check vacuous")
	}

	cc, err := CrossCheck(res, ms)
	if err != nil {
		t.Fatal(err)
	}
	if cc.SingleCells == 0 || cc.MultiCells == 0 {
		t.Fatalf("degenerate classification: %+v", cc)
	}
	if !cc.Consistent() {
		t.Fatalf("estimators disagree: %+v (single-stream regions must read low density)", cc)
	}
}

func TestCrossCheckBoxMismatch(t *testing.T) {
	res := &Result{GridN: 4, Box: geom.NewBox(geom.V(1, 0, 0), geom.V(5, 4, 4)),
		Grid: make([]float64, 64)}
	ms := &multistream.Field{M: 4, BoxSize: 4, Streams: make([]int32, 64)}
	if _, err := CrossCheck(res, ms); err == nil {
		t.Fatal("box mismatch accepted")
	}
}

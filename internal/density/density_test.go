package density

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dtfe"
	"repro/internal/geom"
)

func jitteredLattice(seed int64, n int, L float64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	h := L / float64(n)
	pts := make([]geom.Vec3, 0, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pts = append(pts, geom.V(
					(float64(x)+0.5+0.3*(rng.Float64()-0.5))*h,
					(float64(y)+0.5+0.3*(rng.Float64()-0.5))*h,
					(float64(z)+0.5+0.3*(rng.Float64()-0.5))*h))
			}
		}
	}
	return pts
}

func periodicConfig(gridN int, L float64) Config {
	return Config{
		GridN:    gridN,
		Box:      geom.NewBox(geom.Vec3{}, geom.V(L, L, L)),
		Periodic: true,
		Pad:      L / 4,
	}
}

func TestConfigValidate(t *testing.T) {
	box := geom.NewBox(geom.Vec3{}, geom.V(4, 4, 4))
	bad := []Config{
		{GridN: 1, Box: box},
		{GridN: 8},
		{GridN: 12, Box: box, Spectrum: true},
		{GridN: 8, Box: geom.NewBox(geom.Vec3{}, geom.V(4, 4, 2)), Spectrum: true},
		{GridN: 8, Box: box, Percentiles: []float64{-5}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{GridN: 8, Box: box, Spectrum: true}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestUniformFieldStatsAndMassConservation(t *testing.T) {
	const L = 6.0
	pts := jitteredLattice(5, 6, L) // 216 tracers, unit mass
	res, err := Compute(periodicConfig(8, L), pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.Outside != 0 {
		t.Errorf("%d samples outside hull despite periodic padding", res.Sample.Outside)
	}
	if res.Sample.Degenerate != 0 {
		t.Errorf("%d degenerate samples", res.Sample.Degenerate)
	}
	// Near-uniform tracers: mean density ~ count/volume and few voids.
	wantMean := float64(len(pts)) / (L * L * L)
	if math.Abs(res.Stats.Mean-wantMean) > 0.15*wantMean {
		t.Errorf("mean %v, want ~%v", res.Stats.Mean, wantMean)
	}
	if res.Stats.VoidFrac > 0.05 {
		t.Errorf("void fraction %v on a uniform field", res.Stats.VoidFrac)
	}
	// Mass conservation: the grid integral over the periodic box must
	// recover the tracer mass to sampling tolerance.
	if math.Abs(res.Stats.GridMass-res.Stats.TracerMass) > 0.1*res.Stats.TracerMass {
		t.Errorf("grid mass %v vs tracer mass %v", res.Stats.GridMass, res.Stats.TracerMass)
	}
	if res.Stats.TracerMass != float64(len(pts)) {
		t.Errorf("tracer mass %v, want %d", res.Stats.TracerMass, len(pts))
	}
	if res.Tracers != len(pts) || res.Padded <= len(pts) {
		t.Errorf("tracers %d padded %d", res.Tracers, res.Padded)
	}
}

func TestWeightedMassConservation(t *testing.T) {
	const L = 5.0
	pts := jitteredLattice(6, 5, L)
	rng := rand.New(rand.NewSource(7))
	masses := make([]float64, len(pts))
	var want float64
	for i := range masses {
		masses[i] = 0.5 + rng.Float64()
		want += masses[i]
	}
	res, err := Compute(periodicConfig(8, L), pts, masses)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TracerMass != want {
		t.Errorf("tracer mass %v, want %v", res.Stats.TracerMass, want)
	}
	if math.Abs(res.Stats.GridMass-want) > 0.1*want {
		t.Errorf("grid mass %v vs tracer mass %v", res.Stats.GridMass, want)
	}
}

// Warm pipelines must reproduce cold one-shot runs byte for byte, across
// several snapshots reusing the same scratch and buffers.
func TestWarmReuseByteIdentical(t *testing.T) {
	const L = 5.0
	cfg := periodicConfig(8, L)
	cfg.Spectrum = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		pts := jitteredLattice(int64(20+step), 5, L)
		warm, err := p.Step(pts, nil)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		warmBytes := EncodeGrid(warm.Grid)
		cold, err := Compute(cfg, pts, nil)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !bytes.Equal(warmBytes, EncodeGrid(cold.Grid)) {
			t.Fatalf("step %d: warm grid differs from cold run", step)
		}
		if len(warm.Spectrum) != len(cold.Spectrum) {
			t.Fatalf("step %d: spectrum shape differs", step)
		}
		for i := range warm.Spectrum {
			if warm.Spectrum[i] != cold.Spectrum[i] {
				t.Fatalf("step %d bin %d: warm %+v cold %+v", step, i, warm.Spectrum[i], cold.Spectrum[i])
			}
		}
	}
}

// Grid bytes must be independent of how interpolation is partitioned into
// slabs and worker counts — the property the session relies on to spread
// slabs over ranks.
func TestSlabPartitioningInvariance(t *testing.T) {
	const L = 5.0
	cfg := periodicConfig(8, L)
	pts := jitteredLattice(9, 5, L)

	ref, err := Compute(cfg, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := EncodeGrid(ref.Grid)

	for _, slabs := range []int{2, 3, 8} {
		for _, workers := range []int{1, 4} {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Triangulate(pts, nil); err != nil {
				t.Fatal(err)
			}
			// Interpolate in contiguous slabs, mimicking the session's
			// rank split.
			var sample dtfe.SampleStats
			n := cfg.GridN
			for s := 0; s < slabs; s++ {
				sample.Add(p.InterpolateSlab(s*n/slabs, (s+1)*n/slabs, workers))
			}
			res := p.Finalize(sample)
			if !bytes.Equal(EncodeGrid(res.Grid), refBytes) {
				t.Fatalf("slabs=%d workers=%d: grid bytes differ", slabs, workers)
			}
			if sample != ref.Sample {
				t.Fatalf("slabs=%d workers=%d: sample stats %+v != %+v", slabs, workers, sample, ref.Sample)
			}
		}
	}
}

func TestSpectrumDetectsClustering(t *testing.T) {
	const L = 8.0
	cfg := periodicConfig(16, L)
	cfg.Spectrum = true

	uniform, err := Compute(cfg, jitteredLattice(3, 8, L), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Clustered tracers: collapse half the lattice into a ball.
	pts := jitteredLattice(3, 8, L)
	c := geom.V(L/2, L/2, L/2)
	for i := 0; i < len(pts)/2; i++ {
		pts[i] = c.Add(pts[i].Sub(c).Scale(0.25))
	}
	clustered, err := Compute(cfg, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniform.Spectrum) == 0 || len(clustered.Spectrum) == 0 {
		t.Fatal("missing spectrum")
	}
	for _, b := range clustered.Spectrum {
		if b.Power < 0 || math.IsNaN(b.Power) {
			t.Fatalf("invalid power %v at k=%v", b.Power, b.K)
		}
	}
	if clustered.Spectrum[0].Power <= uniform.Spectrum[0].Power {
		t.Errorf("clustered large-scale power %v <= uniform %v",
			clustered.Spectrum[0].Power, uniform.Spectrum[0].Power)
	}
	if clustered.Stats.VoidFrac <= uniform.Stats.VoidFrac {
		t.Errorf("clustered void fraction %v <= uniform %v",
			clustered.Stats.VoidFrac, uniform.Stats.VoidFrac)
	}
}

func TestPercentilesMonotone(t *testing.T) {
	const L = 5.0
	res, err := Compute(periodicConfig(8, L), jitteredLattice(13, 5, L), nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Stats.Percentiles
	if len(ps) != 5 {
		t.Fatalf("default percentiles: got %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Value < ps[i-1].Value {
			t.Fatalf("percentiles not monotone: %+v", ps)
		}
	}
	if res.Stats.Min > ps[0].Value || res.Stats.Max < ps[len(ps)-1].Value {
		t.Fatalf("min/max inconsistent with percentiles: %+v", res.Stats)
	}
}

func TestEncodeDecodeGridRoundtrip(t *testing.T) {
	grid := []float64{0, 1.5, -2.25, math.Pi, 1e300}
	dec, err := DecodeGrid(EncodeGrid(grid))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(grid) {
		t.Fatal("length mismatch")
	}
	for i := range grid {
		if dec[i] != grid[i] {
			t.Fatalf("index %d: %v != %v", i, dec[i], grid[i])
		}
	}
	if _, err := DecodeGrid(make([]byte, 13)); err == nil {
		t.Error("odd-length encoding accepted")
	}
}

func TestResultCloneDetaches(t *testing.T) {
	const L = 5.0
	p, err := New(periodicConfig(8, L))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step(jitteredLattice(31, 5, L), nil)
	if err != nil {
		t.Fatal(err)
	}
	own := res.Clone()
	first := EncodeGrid(own.Grid)
	if _, err := p.Step(jitteredLattice(32, 5, L), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, EncodeGrid(own.Grid)) {
		t.Fatal("Clone did not detach the grid from the pipeline buffer")
	}
}

// Package density is the streaming DTFE density pipeline: tessellate the
// tracers, interpolate the Delaunay field estimate onto a regular sample
// grid, and reduce the grid to a power spectrum and void/percentile
// statistics. It is the analysis stage the paper's in situ framework
// exists to feed (Sec. V couples tessellation output directly to density
// and void analyses), packaged so that core.Session can run it warm
// across snapshots: a Pipeline retains its triangulation scratch, the
// estimator accumulators, and the sample grid between steps.
//
// The pipeline is split into three phases — Triangulate, InterpolateSlab,
// Finalize — so a session can time each under its obs recorder and spread
// interpolation slabs across ranks. Every per-cell sample depends only on
// the triangulation and the cell center (point location goes through an
// immutable delaunay.Locator), so the grid bytes are identical for any
// block count, slab partitioning, or worker count: the decomposition-
// independence oracle the tests pin.
package density

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/delaunay"
	"repro/internal/dtfe"
	"repro/internal/fft"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/voronoi"
)

// Config describes a density-pipeline workload. The same Config drives
// every snapshot of a warm session.
type Config struct {
	// GridN is the sample-grid resolution per axis (GridN^3 cells).
	GridN int
	// Box is the sample region; cells are sampled at their centers.
	Box geom.Box
	// Periodic pads the tracer set with periodic images within Pad of the
	// box faces before triangulating, so every sample cell is interior to
	// the hull and the field wraps like the simulation volume.
	Periodic bool
	// Pad is the periodic-image depth; <= 0 picks a quarter of the
	// smallest box side. Sessions default it to their ghost size.
	Pad float64
	// Spectrum enables the power-spectrum reduction (requires a cubic box
	// and power-of-two GridN).
	Spectrum bool
	// Percentiles are the density percentiles to report (in [0,100]);
	// nil means {5, 25, 50, 75, 95}.
	Percentiles []float64
	// VoidThreshold classifies a sample cell as void when its density is
	// below VoidThreshold times the grid mean; <= 0 means 0.2.
	VoidThreshold float64
}

func (c *Config) applyDefaults() {
	if c.VoidThreshold <= 0 {
		c.VoidThreshold = 0.2
	}
	if c.Percentiles == nil {
		c.Percentiles = []float64{5, 25, 50, 75, 95}
	}
	if c.Pad <= 0 {
		s := c.Box.Size()
		c.Pad = math.Min(s.X, math.Min(s.Y, s.Z)) / 4
	}
}

// Validate checks the config without mutating it.
func (c Config) Validate() error {
	if c.GridN < 2 {
		return fmt.Errorf("density: grid resolution %d, need >= 2", c.GridN)
	}
	if c.Box.Empty() || c.Box.Volume() <= 0 {
		return fmt.Errorf("density: empty sample box")
	}
	if c.Spectrum {
		if !fft.IsPow2(c.GridN) {
			return fmt.Errorf("density: spectrum requires power-of-two grid, got %d", c.GridN)
		}
		s := c.Box.Size()
		if math.Abs(s.X-s.Y) > 1e-9*s.X || math.Abs(s.X-s.Z) > 1e-9*s.X {
			return fmt.Errorf("density: spectrum requires a cubic box, got %v", s)
		}
	}
	for _, p := range c.Percentiles {
		if p < 0 || p > 100 {
			return fmt.Errorf("density: percentile %v outside [0,100]", p)
		}
	}
	return nil
}

// Percentile is one point of the density distribution.
type Percentile struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// Stats summarizes the sampled density grid.
type Stats struct {
	Mean        float64      `json:"mean"`
	Min         float64      `json:"min"`
	Max         float64      `json:"max"`
	Percentiles []Percentile `json:"percentiles,omitempty"`
	// VoidFrac is the fraction of sample cells below VoidThreshold times
	// the mean.
	VoidFrac float64 `json:"void_frac"`
	// GridMass is the grid integral of the field (mean density times box
	// volume); for a periodic field it must match TracerMass to sampling
	// tolerance — the mass-conservation diagnostic.
	GridMass   float64 `json:"grid_mass"`
	TracerMass float64 `json:"tracer_mass"`
}

// SpectrumBin is one radial bin of the density power spectrum.
type SpectrumBin struct {
	// K is the bin's wavenumber 2*pi*b/L for integer radius b.
	K float64 `json:"k"`
	// Power is the bin-averaged P(k) = |delta_k|^2 L^3 / N^6.
	Power float64 `json:"power"`
	Count int     `json:"count"`
}

// Result is one snapshot's pipeline output. Grid is loaned from the
// Pipeline — valid until its next Triangulate — and Clone detaches it.
type Result struct {
	GridN int      `json:"grid_n"`
	Box   geom.Box `json:"box"`
	// Tracers is the input point count; Padded adds periodic images.
	Tracers  int              `json:"tracers"`
	Padded   int              `json:"padded"`
	Tets     int              `json:"tets"`
	Grid     []float64        `json:"-"`
	Sample   dtfe.SampleStats `json:"sample"`
	Stats    Stats            `json:"stats"`
	Spectrum []SpectrumBin    `json:"spectrum,omitempty"`
	Obs      *obs.Snapshot    `json:"-"`
}

// Clone returns a deep copy that owns its grid and spectrum storage.
func (r *Result) Clone() *Result {
	c := *r
	c.Grid = append([]float64(nil), r.Grid...)
	c.Spectrum = append([]SpectrumBin(nil), r.Spectrum...)
	c.Stats.Percentiles = append([]Percentile(nil), r.Stats.Percentiles...)
	return &c
}

// Pipeline runs the density workload warm across snapshots, retaining the
// triangulation scratch, estimator accumulators, point/grid buffers, and
// FFT storage between steps. The phase methods must be sequenced
// Triangulate → InterpolateSlab (concurrently over disjoint slabs is
// fine) → Finalize; a Pipeline must not run two snapshots concurrently.
type Pipeline struct {
	cfg     Config
	builder delaunay.Builder
	est     dtfe.Estimator

	pts    []geom.Vec3 // tracers + periodic images
	masses []float64
	field  *dtfe.Field
	loc    *delaunay.Locator

	grid    []float64
	sorted  []float64
	fgrid   *fft.Grid3
	tracers int
	res     Result
}

// New validates cfg and returns a pipeline for it.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	return &Pipeline{cfg: cfg}, nil
}

// Config returns the pipeline's configuration (defaults applied).
func (p *Pipeline) Config() Config { return p.cfg }

// Compute runs the full pipeline once on a fresh Pipeline and returns an
// owned Result. It is the convenience entry for CLIs and the direct
// single-process oracle the daemon e2e tests compare grid bytes against.
func Compute(cfg Config, pts []geom.Vec3, masses []float64) (*Result, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := p.Step(pts, masses)
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// Step runs triangulate → interpolate → finalize serially for one
// snapshot.
//
//tess:loaned
func (p *Pipeline) Step(pts []geom.Vec3, masses []float64) (*Result, error) {
	if err := p.Triangulate(pts, masses); err != nil {
		return nil, err
	}
	st := p.InterpolateSlab(0, p.cfg.GridN, 1)
	return p.Finalize(st), nil
}

// Triangulate tessellates the snapshot's tracers (plus periodic images
// when configured) and prepares the DTFE field and point locator. masses
// may be nil for unit tracers.
func (p *Pipeline) Triangulate(pts []geom.Vec3, masses []float64) error {
	if masses != nil && len(masses) != len(pts) {
		return fmt.Errorf("density: %d points but %d masses", len(pts), len(masses))
	}
	p.tracers = len(pts)
	p.pts = append(p.pts[:0], pts...)
	p.masses = p.masses[:0]
	if masses != nil {
		p.masses = append(p.masses, masses...)
	}
	if p.cfg.Periodic {
		p.addImages(masses != nil)
	}
	tr, err := p.builder.Build(p.pts)
	if err != nil {
		return fmt.Errorf("density: triangulate: %w", err)
	}
	var m []float64
	if masses != nil {
		m = p.masses
	}
	f, err := p.est.Estimate(tr, m)
	if err != nil {
		return fmt.Errorf("density: estimate: %w", err)
	}
	p.field = f
	p.loc = tr.NewLocator(0)
	n := p.cfg.GridN
	p.grid = resize(p.grid, n*n*n)
	return nil
}

// addImages appends periodic images of the tracers lying within Pad of
// the box, in a fixed tracer-major, offset-minor order so the padded
// point sequence (and hence the triangulation) is deterministic.
func (p *Pipeline) addImages(withMasses bool) {
	box := p.cfg.Box
	size := box.Size()
	outer := box.Expand(p.cfg.Pad)
	n := len(p.pts)
	for i := 0; i < n; i++ {
		pt := p.pts[i]
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 && dz == 0 {
						continue
					}
					img := pt.Add(geom.V(float64(dx)*size.X, float64(dy)*size.Y, float64(dz)*size.Z))
					if !outer.Contains(img) {
						continue
					}
					p.pts = append(p.pts, img)
					if withMasses {
						p.masses = append(p.masses, p.masses[i])
					}
				}
			}
		}
	}
}

// InterpolateSlab samples grid planes [z0, z1) at cell centers, spreading
// planes over `workers` goroutines, and returns the slab's sample stats.
// Distinct slabs write disjoint planes and only read the immutable field
// and locator, so concurrent calls from different ranks are safe and the
// resulting bytes are independent of the slab/worker partitioning.
func (p *Pipeline) InterpolateSlab(z0, z1, workers int) dtfe.SampleStats {
	n := p.cfg.GridN
	z0 = max(z0, 0)
	z1 = min(z1, n)
	if z0 >= z1 {
		return dtfe.SampleStats{}
	}
	workers = max(workers, 1)
	box := p.cfg.Box
	size := box.Size()
	perWorker := make([]dtfe.SampleStats, workers)
	// ParallelFor hands each worker multiple chunks; accumulate into the
	// worker's slot (each slot has a single sequential writer).
	voronoi.ParallelFor(z1-z0, workers, func(lo, hi, worker int) {
		var st dtfe.SampleStats
		for k := z0 + lo; k < z0+hi; k++ {
			z := box.Min.Z + (float64(k)+0.5)*size.Z/float64(n)
			for j := 0; j < n; j++ {
				y := box.Min.Y + (float64(j)+0.5)*size.Y/float64(n)
				for i := 0; i < n; i++ {
					x := box.Min.X + (float64(i)+0.5)*size.X/float64(n)
					d, err := p.field.SampleWith(p.loc, geom.V(x, y, z))
					switch {
					case err == nil:
						p.grid[(k*n+j)*n+i] = d
						st.Inside++
					case errors.Is(err, dtfe.ErrOutside):
						st.Outside++
					default:
						st.Degenerate++
					}
				}
			}
		}
		perWorker[worker].Add(st)
	})
	var total dtfe.SampleStats
	for _, st := range perWorker {
		total.Add(st)
	}
	return total
}

// Finalize reduces the interpolated grid to statistics (and the power
// spectrum when configured) and assembles the snapshot Result. sample is
// the accumulated stats of the InterpolateSlab calls that covered the
// grid.
//
//tess:loaned
func (p *Pipeline) Finalize(sample dtfe.SampleStats) *Result {
	n := p.cfg.GridN
	grid := p.grid

	var sum float64
	for _, v := range grid {
		sum += v
	}
	mean := sum / float64(len(grid))

	p.sorted = append(p.sorted[:0], grid...)
	sort.Float64s(p.sorted)

	st := Stats{
		Mean: mean,
		Min:  p.sorted[0],
		Max:  p.sorted[len(p.sorted)-1],
	}
	st.Percentiles = st.Percentiles[:0]
	for _, q := range p.cfg.Percentiles {
		st.Percentiles = append(st.Percentiles, Percentile{P: q, Value: quantile(p.sorted, q)})
	}
	thr := p.cfg.VoidThreshold * mean
	voids := sort.SearchFloat64s(p.sorted, thr)
	st.VoidFrac = float64(voids) / float64(len(grid))
	st.GridMass = mean * p.cfg.Box.Volume()
	if len(p.masses) > 0 {
		for _, m := range p.masses[:p.tracers] {
			st.TracerMass += m
		}
	} else {
		st.TracerMass = float64(p.tracers)
	}

	p.res = Result{
		GridN:   n,
		Box:     p.cfg.Box,
		Tracers: p.tracers,
		Padded:  len(p.pts),
		Tets:    len(p.field.Tri.Tets),
		Grid:    grid,
		Sample:  sample,
		Stats:   st,
	}
	if p.cfg.Spectrum && mean > 0 {
		p.res.Spectrum = p.spectrum(mean)
	}
	return &p.res
}

// spectrum computes the radially binned power spectrum of the density
// contrast delta = rho/mean - 1. Mode accumulation runs in fixed z,y,x
// order, so bin sums are deterministic.
func (p *Pipeline) spectrum(mean float64) []SpectrumBin {
	n := p.cfg.GridN
	if p.fgrid == nil || p.fgrid.N != n {
		p.fgrid = fft.NewGrid3(n)
	}
	g := p.fgrid
	for i, v := range p.grid {
		g.Data[i] = complex(v/mean-1, 0)
	}
	fft.Forward3(g)

	L := p.cfg.Box.Size().X
	nbins := n / 2
	power := make([]float64, nbins+1)
	count := make([]int, nbins+1)
	for z := 0; z < n; z++ {
		kz := fft.FreqIndex(z, n)
		for y := 0; y < n; y++ {
			ky := fft.FreqIndex(y, n)
			for x := 0; x < n; x++ {
				kx := fft.FreqIndex(x, n)
				r2 := kx*kx + ky*ky + kz*kz
				if r2 == 0 {
					continue
				}
				b := int(math.Sqrt(float64(r2)))
				if b > nbins {
					continue // corner modes beyond the Nyquist sphere
				}
				c := g.Data[(z*n+y)*n+x]
				power[b] += real(c)*real(c) + imag(c)*imag(c)
				count[b]++
			}
		}
	}
	n3 := float64(n) * float64(n) * float64(n)
	norm := L * L * L / (n3 * n3)
	out := make([]SpectrumBin, 0, nbins)
	for b := 1; b <= nbins; b++ {
		if count[b] == 0 {
			continue
		}
		out = append(out, SpectrumBin{
			K:     2 * math.Pi * float64(b) / L,
			Power: power[b] / float64(count[b]) * norm,
			Count: count[b],
		})
	}
	return out
}

// quantile is the nearest-rank quantile of an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q/100*float64(len(sorted)))) - 1
	idx = min(max(idx, 0), len(sorted)-1)
	return sorted[idx]
}

func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// EncodeGrid serializes a density grid as little-endian float64s — the
// wire format of the daemon's grid-slice endpoint and of the byte-identity
// oracles in the tests.
func EncodeGrid(grid []float64) []byte {
	out := make([]byte, 8*len(grid))
	for i, v := range grid {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeGrid parses a grid encoded by EncodeGrid.
func DecodeGrid(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("density: grid encoding length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

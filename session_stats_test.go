package tess

import (
	"testing"
	"time"
)

// Regression guard for the session-stats lifecycle: SessionStats fields
// (Steps, WarmSites/ColdSites, Uptime) are cumulative session state, while
// an attached Recorder is reset at every Step so its snapshot describes
// only the latest step. The per-step Reset must never bleed into the
// cumulative numbers, and the per-step counters must not accumulate.
func TestSessionStatsSurvivePerStepObsReset(t *testing.T) {
	rec := NewRecorder(2)
	cfg := NewPeriodicConfig(8, WithGhostSize(3), WithRecorder(rec))
	sess, err := Open(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const steps = 3
	n := int64(len(testParticles(1, 6, 8)))
	var prevUptime time.Duration
	for step := 1; step <= steps; step++ {
		out, err := sess.Step(testParticles(int64(step), 6, 8))
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		// The obs snapshot is per-step: its warm+cold site counts cover
		// exactly this step's sites, not the session's running total.
		if out.Obs == nil {
			t.Fatalf("step %d: no obs snapshot despite recorder", step)
		}
		var snapSites int64
		for _, name := range []string{"sites-warm", "sites-cold"} {
			for _, v := range out.Obs.Counters[name] {
				snapSites += v
			}
		}
		if snapSites != n {
			t.Errorf("step %d: obs snapshot counts %d sites, want %d (one step's worth)",
				step, snapSites, n)
		}

		// Session stats are cumulative: the recorder reset between steps
		// must not have clipped them back.
		st := sess.Stats()
		if st.Steps != step {
			t.Errorf("after step %d: Stats().Steps = %d", step, st.Steps)
		}
		if got := st.WarmSites + st.ColdSites; got != n*int64(step) {
			t.Errorf("after step %d: cumulative warm+cold = %d, want %d",
				step, got, n*int64(step))
		}
		if step == 1 && st.WarmSites != 0 {
			t.Errorf("first step classified %d sites warm, want 0 (all cold)", st.WarmSites)
		}
		if step > 1 && st.WarmSites == 0 {
			t.Errorf("after step %d: no warm sites despite small displacements", step)
		}
		if st.Uptime <= prevUptime {
			t.Errorf("after step %d: Uptime = %v, not past previous %v", step, st.Uptime, prevUptime)
		}
		prevUptime = st.Uptime
	}

	// Close keeps the cumulative stats readable.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Steps != steps || st.WarmSites+st.ColdSites != n*steps {
		t.Errorf("stats after Close = %+v, want %d steps over %d sites", st, steps, n*steps)
	}
	if st.Uptime < prevUptime {
		t.Errorf("Uptime after Close = %v, regressed below %v", st.Uptime, prevUptime)
	}
}

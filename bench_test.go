package tess

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// executes the computation that regenerates its experiment (at reduced
// scale — the full tables are printed by the cmd/ harnesses) and reports
// the experiment's headline quantity as a custom metric, so `go test
// -bench . -benchmem` doubles as a smoke-level regeneration of the whole
// evaluation.

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/voids"
	"repro/internal/voronoi"
)

// benchState caches the expensive fixtures (simulation snapshots and their
// serial tessellations) across benchmarks.
type benchState struct {
	once      sync.Once
	particles []diy.Particle // 8^3 particles after 40 steps
	serialRef []CellSummary
	records   []CellRecord // flattened cell records of the snapshot
}

var bench benchState

const benchNg = 8
const benchL = float64(benchNg)

func (s *benchState) init(b *testing.B) {
	b.Helper()
	s.once.Do(func() {
		sim, err := nbody.New(nbody.DefaultConfig(benchNg))
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(40, nil)
		s.particles = make([]diy.Particle, len(sim.Pos))
		pts := make([]geom.Vec3, len(sim.Pos))
		ids := make([]int64, len(sim.Pos))
		for i, p := range sim.Pos {
			s.particles[i] = diy.Particle{ID: int64(i), Pos: p}
			pts[i] = p
			ids[i] = int64(i)
		}
		cells, err := voronoi.ComputePeriodic(pts, ids, benchL, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			s.serialRef = append(s.serialRef, CellSummary{
				ID: c.SiteID, Site: c.Site, Volume: c.Volume(), Area: c.Area(),
				Faces: len(c.Faces), Complete: c.Complete,
			})
		}
		out, err := Tessellate(benchConfig(), s.particles, 8)
		if err != nil {
			b.Fatal(err)
		}
		for bi, m := range out.Meshes {
			s.records = append(s.records, voids.CellsFromMesh(m, bi)...)
		}
	})
}

func benchConfig() Config {
	cfg := NewPeriodicConfig(benchL)
	cfg.GhostSize = 4
	return cfg
}

// BenchmarkTableI_Accuracy regenerates one Table I cell: a parallel run
// (8 blocks, ghost 2) compared against the serial reference; the accuracy
// fraction is reported as a metric.
func BenchmarkTableI_Accuracy(b *testing.B) {
	bench.init(b)
	cfg := benchConfig()
	cfg.GhostSize = 2
	cfg.KeepIncomplete = true
	var acc float64
	for i := 0; i < b.N; i++ {
		out, err := Tessellate(cfg, bench.particles, 8)
		if err != nil {
			b.Fatal(err)
		}
		rep := CompareAccuracy(bench.serialRef, out.Summaries(), 1e-6)
		acc = rep.Accuracy
	}
	b.ReportMetric(acc*100, "%accuracy")
}

// BenchmarkTableII covers the performance table's tessellation pipeline at
// two block counts, reporting the phase split as metrics.
func BenchmarkTableII_Tessellation_P1(b *testing.B) { benchTableII(b, 1) }
func BenchmarkTableII_Tessellation_P8(b *testing.B) { benchTableII(b, 8) }

func benchTableII(b *testing.B, blocks int) {
	bench.init(b)
	cfg := benchConfig()
	cfg.OutputPath = filepath.Join(b.TempDir(), "bench.out")
	var tm Timing
	for i := 0; i < b.N; i++ {
		out, err := core.RunTimed(cfg, bench.particles, blocks)
		if err != nil {
			b.Fatal(err)
		}
		tm = out.Timing
	}
	b.ReportMetric(tm.Exchange.Seconds()*1e3, "exch-ms")
	b.ReportMetric(tm.Compute.Seconds()*1e3, "voro-ms")
	b.ReportMetric(tm.Output.Seconds()*1e3, "out-ms")
	b.ReportMetric(float64(tm.OutputBytes)/1e6, "MB")
}

// BenchmarkFig7_Minkowski regenerates the plugin's analysis: threshold,
// connected components, Minkowski functionals.
func BenchmarkFig7_Minkowski(b *testing.B) {
	bench.init(b)
	th := meanVolume(bench.records)
	var comps int
	for i := 0; i < b.N; i++ {
		cs := voids.ConnectedComponents(voids.Threshold(bench.records, th))
		comps = len(cs)
	}
	b.ReportMetric(float64(comps), "components")
}

// BenchmarkFig8_VolumeHistogram regenerates the cell volume distribution
// and its moments.
func BenchmarkFig8_VolumeHistogram(b *testing.B) {
	bench.init(b)
	vols := make([]float64, len(bench.records))
	for i, r := range bench.records {
		vols[i] = r.Volume
	}
	var skew float64
	for i := 0; i < b.N; i++ {
		h := stats.NewHistogram(0.02, 2, 100)
		h.AddAll(vols)
		skew = stats.ComputeMoments(vols).Skewness
	}
	b.ReportMetric(skew, "skewness")
}

// BenchmarkFig9_ThresholdSweep regenerates the progressive threshold
// experiment.
func BenchmarkFig9_ThresholdSweep(b *testing.B) {
	bench.init(b)
	ths := []float64{0, 0.5, 0.75, 1.0}
	var last int
	for i := 0; i < b.N; i++ {
		rows := voids.ThresholdSweep(bench.records, ths)
		last = rows[len(rows)-1].Components
	}
	b.ReportMetric(float64(last), "components@1.0")
}

// BenchmarkFig10_StrongScaling measures the slowest-rank compute time at 8
// blocks against 1 block and reports the strong-scaling efficiency.
func BenchmarkFig10_StrongScaling(b *testing.B) {
	bench.init(b)
	cfg := benchConfig()
	var eff float64
	for i := 0; i < b.N; i++ {
		o1, err := core.RunTimed(cfg, bench.particles, 1)
		if err != nil {
			b.Fatal(err)
		}
		o8, err := core.RunTimed(cfg, bench.particles, 8)
		if err != nil {
			b.Fatal(err)
		}
		eff = o1.Timing.Compute.Seconds() / (8 * o8.Timing.Compute.Seconds())
	}
	b.ReportMetric(eff*100, "%strong-eff")
}

// BenchmarkFig10_WeakScaling holds work per rank constant (8^3@1 vs
// 16^3@8) and reports the weak-scaling efficiency.
func BenchmarkFig10_WeakScaling(b *testing.B) {
	bench.init(b)
	sim16, err := nbody.New(nbody.DefaultConfig(16))
	if err != nil {
		b.Fatal(err)
	}
	// Match the base fixture's evolution stage so per-cell cost is
	// comparable across the two scales.
	sim16.Run(40, nil)
	big := make([]diy.Particle, len(sim16.Pos))
	for i, p := range sim16.Pos {
		big[i] = diy.Particle{ID: int64(i), Pos: p}
	}
	cfgSmall := benchConfig()
	cfgBig := NewPeriodicConfig(16)
	cfgBig.GhostSize = 4
	var eff float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o1, err := core.RunTimed(cfgSmall, bench.particles, 1)
		if err != nil {
			b.Fatal(err)
		}
		o8, err := core.RunTimed(cfgBig, big, 8)
		if err != nil {
			b.Fatal(err)
		}
		eff = o1.Timing.Compute.Seconds() / o8.Timing.Compute.Seconds()
	}
	b.ReportMetric(eff*100, "%weak-eff")
}

// BenchmarkFig11_DeltaEvolution regenerates one time point of the density
// contrast study.
func BenchmarkFig11_DeltaEvolution(b *testing.B) {
	bench.init(b)
	var kurt float64
	for i := 0; i < b.N; i++ {
		out, err := Tessellate(benchConfig(), bench.particles, 8)
		if err != nil {
			b.Fatal(err)
		}
		vols := out.Volumes()
		dens := make([]float64, len(vols))
		for j, v := range vols {
			dens[j] = 1 / v
		}
		kurt = stats.ComputeMoments(cosmo.DensityContrast(dens)).Kurtosis
	}
	b.ReportMetric(kurt, "kurtosis")
}

// BenchmarkDataModel_Encode covers the Sec. III-C2 storage path: building
// and serializing the block data model.
func BenchmarkDataModel_Encode(b *testing.B) {
	bench.init(b)
	out, err := Tessellate(benchConfig(), bench.particles, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := out.Meshes[0]
	var bytesPer float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		bytesPer = float64(len(data)) / float64(m.NumCells())
	}
	b.ReportMetric(bytesPer, "B/particle")
}

// --- Ablations ---

// BenchmarkAblationEarlyCull compares the pipeline with and without the
// conservative circumscribing-sphere pre-cull (paper step 3c).
func BenchmarkAblationEarlyCull_On(b *testing.B)  { benchEarlyCull(b, true) }
func BenchmarkAblationEarlyCull_Off(b *testing.B) { benchEarlyCull(b, false) }

func benchEarlyCull(b *testing.B, early bool) {
	bench.init(b)
	cfg := benchConfig()
	cfg.MinVolume = 1.0
	if !early {
		// Disable the early path by computing with no threshold and
		// filtering afterwards — the exact-only baseline.
		cfg.MinVolume = 0
	}
	for i := 0; i < b.N; i++ {
		out, err := core.RunTimed(cfg, bench.particles, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !early {
			kept := 0
			for _, v := range out.Volumes() {
				if v >= 1.0 {
					kept++
				}
			}
			_ = kept
		}
	}
}

// BenchmarkAblationTargetedExchange compares the targeted neighbor exchange
// against the broadcast-to-all-neighbors baseline, reporting ghost volume.
func BenchmarkAblationTargetedExchange(b *testing.B)  { benchExchange(b, diy.ExchangeGhost) }
func BenchmarkAblationBroadcastExchange(b *testing.B) { benchExchange(b, diy.BroadcastExchange) }

func benchExchange(b *testing.B, fn func(*comm.World, *diy.Decomposition, int, []diy.Particle, float64) []diy.Particle) {
	bench.init(b)
	d, err := diy.Decompose(geom.NewBox(geom.V(0, 0, 0), geom.V(benchL, benchL, benchL)), 8, true)
	if err != nil {
		b.Fatal(err)
	}
	parts := diy.PartitionParticles(d, bench.particles)
	var ghosts int64
	for i := 0; i < b.N; i++ {
		w := comm.NewWorld(8)
		var mu sync.Mutex
		var total int64
		w.Run(func(rank int) {
			g := fn(w, d, rank, parts[rank], 2.0)
			mu.Lock()
			total += int64(len(g))
			mu.Unlock()
		})
		ghosts = total
	}
	b.ReportMetric(float64(ghosts), "ghosts")
}

// BenchmarkAblationSecurityRadius compares adaptive security-radius
// termination against fixed-shell clipping with a generous shell count.
func BenchmarkAblationSecurityRadius_Adaptive(b *testing.B) { benchSecurity(b, true) }
func BenchmarkAblationSecurityRadius_Fixed(b *testing.B)    { benchSecurity(b, false) }

func benchSecurity(b *testing.B, adaptive bool) {
	bench.init(b)
	pts := make([]geom.Vec3, len(bench.particles))
	ids := make([]int64, len(bench.particles))
	for i, p := range bench.particles {
		pts[i] = p.Pos
		ids[i] = p.ID
	}
	ix := voronoi.NewIndex(pts, ids, 0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < len(pts); j += 4 {
			box := geom.Cube(pts[j], benchL/2)
			var err error
			if adaptive {
				_, err = voronoi.ComputeCell(ix, pts[j], ids[j], box)
			} else {
				_, err = voronoi.ComputeCellFixedShells(ix, pts[j], ids[j], box, ix.MaxShell(pts[j]))
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationNeighborSearch compares the grid-bucket shell traversal
// against brute-force distance sorting.
func BenchmarkAblationNeighborSearch_Grid(b *testing.B)  { benchSearch(b, true) }
func BenchmarkAblationNeighborSearch_Brute(b *testing.B) { benchSearch(b, false) }

func benchSearch(b *testing.B, grid bool) {
	bench.init(b)
	pts := make([]geom.Vec3, len(bench.particles))
	ids := make([]int64, len(bench.particles))
	for i, p := range bench.particles {
		pts[i] = p.Pos
		ids[i] = p.ID
	}
	ix := voronoi.NewIndex(pts, ids, 0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < len(pts); j += 8 {
			box := geom.Cube(pts[j], benchL/2)
			var err error
			if grid {
				_, err = voronoi.ComputeCell(ix, pts[j], ids[j], box)
			} else {
				_, err = voronoi.ComputeCellBrute(pts, ids, pts[j], ids[j], box)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkComputeCell measures the hot clipping kernel bare versus with
// disabled observability hooks wired around every cell (a nil *obs.Recorder,
// the state of any run that does not request tracing). The hook placement
// here is per-cell — far finer than the real per-rank spans in core — so
// the measured overhead is a conservative upper bound. The nil fast path
// must be free: TestNilRecorderHooksAreFree asserts 0 allocs from the hooks
// and alloc-identical kernels; the wall-clock delta is reported by this
// pair and recorded in EXPERIMENTS.md.
func BenchmarkComputeCell_Bare(b *testing.B)   { benchComputeCellObs(b, false) }
func BenchmarkComputeCell_NilObs(b *testing.B) { benchComputeCellObs(b, true) }

// benchCellFixture returns the shared kernel inputs for the obs-overhead
// pair: grid index, site arrays, and a reusable scratch.
func benchCellFixture(b *testing.B) (*voronoi.Index, []geom.Vec3, []int64, *voronoi.Scratch) {
	b.Helper()
	bench.init(b)
	pts := make([]geom.Vec3, len(bench.particles))
	ids := make([]int64, len(bench.particles))
	for i, p := range bench.particles {
		pts[i] = p.Pos
		ids[i] = p.ID
	}
	return voronoi.NewIndex(pts, ids, 0), pts, ids, voronoi.NewScratch()
}

func benchComputeCellObs(b *testing.B, hooked bool) {
	ix, pts, ids, scratch := benchCellFixture(b)
	var rec *obs.Recorder // nil: instrumentation disabled
	ctr := rec.RegisterCounter("cells")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(pts)
		box := geom.Cube(pts[j], benchL/2)
		if hooked {
			sp := rec.Begin(0, obs.PhaseCompute)
			if _, err := voronoi.ComputeCellScratch(ix, pts[j], ids[j], box, scratch); err != nil {
				b.Fatal(err)
			}
			rec.End(0, sp)
			rec.Count(0, ctr, 1)
		} else {
			if _, err := voronoi.ComputeCellScratch(ix, pts[j], ids[j], box, scratch); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestNilRecorderHooksAreFree pins the "disabled observability is free"
// contract: the nil-recorder hook calls themselves perform zero
// allocations, and a cell computed through the hooked loop allocates
// exactly as much as the bare kernel.
func TestNilRecorderHooksAreFree(t *testing.T) {
	b := &testing.B{}
	bench.init(b)
	if b.Failed() {
		t.Fatal("fixture init failed")
	}
	pts := make([]geom.Vec3, len(bench.particles))
	ids := make([]int64, len(bench.particles))
	for i, p := range bench.particles {
		pts[i] = p.Pos
		ids[i] = p.ID
	}
	ix := voronoi.NewIndex(pts, ids, 0)
	scratch := voronoi.NewScratch()
	var rec *obs.Recorder
	ctr := rec.RegisterCounter("cells")

	hooksOnly := testing.AllocsPerRun(1000, func() {
		sp := rec.Begin(0, obs.PhaseCompute)
		rec.End(0, sp)
		rec.Count(0, ctr, 1)
		rec.CountSend(0, 0, 1)
		rec.CountRecv(0, 0, 1)
		rec.CountCollective(0, 1)
	})
	if hooksOnly != 0 {
		t.Errorf("nil-recorder hooks allocate %g objects per call, want 0", hooksOnly)
	}

	j := 0
	kernel := func(hooked bool) float64 {
		return testing.AllocsPerRun(200, func() {
			box := geom.Cube(pts[j], benchL/2)
			if hooked {
				sp := rec.Begin(0, obs.PhaseCompute)
				if _, err := voronoi.ComputeCellScratch(ix, pts[j], ids[j], box, scratch); err != nil {
					t.Fatal(err)
				}
				rec.End(0, sp)
				rec.Count(0, ctr, 1)
			} else {
				if _, err := voronoi.ComputeCellScratch(ix, pts[j], ids[j], box, scratch); err != nil {
					t.Fatal(err)
				}
			}
			j = (j + 1) % len(pts)
		})
	}
	// Warm the scratch so both passes run in steady state, then require
	// bit-equal allocation counts.
	kernel(false)
	bare := kernel(false)
	hooked := kernel(true)
	if hooked != bare {
		t.Errorf("hooked kernel allocates %g objects/cell, bare %g — disabled hooks must add 0", hooked, bare)
	}
}

func meanVolume(recs []CellRecord) float64 {
	var sum float64
	for _, r := range recs {
		sum += r.Volume
	}
	return sum / float64(len(recs))
}

// BenchmarkComputeParallelism measures the intra-rank worker pool on a
// 32^3-site block: one rank, Workers = 1 vs 4. On a multi-core host the
// 4-worker variant should run the compute phase at least ~2x faster; on a
// single-core host (GOMAXPROCS=1) the two are equal up to pool overhead.
// The compute-phase seconds are reported as a metric alongside the total.
func BenchmarkComputeParallelism_W1(b *testing.B) { benchParallelism(b, 1) }
func BenchmarkComputeParallelism_W4(b *testing.B) { benchParallelism(b, 4) }

func benchParallelism(b *testing.B, workers int) {
	const ng = 32
	const L = float64(ng)
	rng := rand.New(rand.NewSource(7))
	parts := make([]diy.Particle, 0, ng*ng*ng)
	id := int64(0)
	for z := 0; z < ng; z++ {
		for y := 0; y < ng; y++ {
			for x := 0; x < ng; x++ {
				parts = append(parts, diy.Particle{ID: id, Pos: geom.V(
					float64(x)+0.5+(rng.Float64()-0.5)*0.8,
					float64(y)+0.5+(rng.Float64()-0.5)*0.8,
					float64(z)+0.5+(rng.Float64()-0.5)*0.8)})
				id++
			}
		}
	}
	cfg := NewPeriodicConfig(L)
	cfg.Workers = workers
	b.ResetTimer()
	var compute float64
	for i := 0; i < b.N; i++ {
		out, err := core.RunTimed(cfg, parts, 1)
		if err != nil {
			b.Fatal(err)
		}
		compute = out.Timing.Compute.Seconds()
	}
	b.ReportMetric(compute, "compute-s/op")
}

// BenchmarkComputeCellAllocs isolates the allocation behavior of one cell
// computation: a fresh Scratch per cell (the ComputeCell path) versus one
// long-lived Scratch reused across cells. The scratch-reuse variant must
// allocate at least 5x fewer objects per cell (it performs only the final
// detach copies, ~3 allocs, against the fresh path's buffer growth).
func BenchmarkComputeCellAllocs_Fresh(b *testing.B)   { benchCellAllocs(b, false) }
func BenchmarkComputeCellAllocs_Scratch(b *testing.B) { benchCellAllocs(b, true) }

func benchCellAllocs(b *testing.B, reuse bool) {
	bench.init(b)
	pts := make([]geom.Vec3, len(bench.particles))
	ids := make([]int64, len(bench.particles))
	for i, p := range bench.particles {
		pts[i] = p.Pos
		ids[i] = p.ID
	}
	ix := voronoi.NewIndex(pts, ids, 0)
	scratch := voronoi.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(pts)
		box := geom.Cube(pts[j], benchL/2)
		var err error
		if reuse {
			_, err = voronoi.ComputeCellScratch(ix, pts[j], ids[j], box, scratch)
		} else {
			_, err = voronoi.ComputeCell(ix, pts[j], ids[j], box)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

package tess

import (
	"repro/internal/core"
	"repro/internal/storage"
)

// Out-of-core snapshot sources and session checkpoint/restart: the
// public surface of internal/storage. A Source supplies one snapshot as
// an ordered sequence of particle chunks; Session.StepFrom consumes it
// chunk by chunk, so a windowed FileSource tessellates boxes whose
// particle sets never fit in memory at once while producing bytes
// identical to an inline Step over the same particles.

// Source supplies one snapshot's particles as an ordered sequence of
// chunks; see SliceSource (inline) and FileSource (block-streamed with
// a bounded resident window).
type Source = storage.Source

// SourceStats is a source's load/evict accounting — the proof that a
// windowed run never had the full particle set resident.
type SourceStats = storage.SourceStats

// FileSource streams a snapshot file written by WriteSnapshot chunk by
// chunk, holding at most its window of chunks resident (released
// chunks are evicted least-recently-used). Close it when done.
type FileSource = storage.FileSource

// SliceSource adapts an in-memory particle slice to the Source
// interface as a single chunk.
type SliceSource = storage.SliceSource

// NewSliceSource wraps ps (not copied) as a single-chunk Source — the
// path every inline Step takes internally.
func NewSliceSource(ps []Particle) *SliceSource { return storage.NewSliceSource(ps) }

// OpenFileSource opens a snapshot file written by WriteSnapshot with a
// resident-window budget of window chunks (<= 0 means unbounded).
func OpenFileSource(path string, window int) (*FileSource, error) {
	return storage.OpenFileSource(path, window)
}

// WriteSnapshot writes ps as a chunked snapshot file readable by
// OpenFileSource, split into contiguous equal runs in slice order (so a
// FileSource over the file supplies exactly the particles of ps, in
// order).
func WriteSnapshot(path string, ps []Particle, chunks int) error {
	return storage.WriteSnapshot(path, ps, chunks)
}

// StepOption adjusts one Step/StepFrom call; see WithOutputPath and
// WithCheckpointEvery.
type StepOption func(*stepSettings)

type stepSettings struct {
	outputPath      *string
	checkpointEvery int
}

// WithOutputPath directs this step's collective block write to path
// (empty writes nothing), overriding Config.OutputPath for this step
// only — the in situ pattern of one output file per selected timestep.
func WithOutputPath(path string) StepOption {
	return func(o *stepSettings) { o.outputPath = &path }
}

// WithCheckpointEvery checkpoints the session into Config.CheckpointDir
// (see WithCheckpointDir) after every k-th completed step, so a crashed
// run resumes from its last checkpoint instead of rerunning the
// simulation. k <= 0 disables auto-checkpointing for this step.
func WithCheckpointEvery(k int) StepOption {
	return func(o *stepSettings) { o.checkpointEvery = k }
}

// resolveStepOpts folds the functional options into the core step
// options, defaulting the output path to the session's configured one.
func resolveStepOpts(defaultPath string, opts []StepOption) core.StepOpts {
	st := stepSettings{}
	for _, opt := range opts {
		opt(&st)
	}
	out := core.StepOpts{OutputPath: defaultPath, CheckpointEvery: st.checkpointEvery}
	if st.outputPath != nil {
		out.OutputPath = *st.outputPath
	}
	return out
}

// WithCheckpointDir sets the directory Session.Checkpoint and the
// per-step auto-checkpoint (WithCheckpointEvery) persist session state
// into (Config.CheckpointDir).
func WithCheckpointDir(dir string) Option {
	return func(c *Config) { c.CheckpointDir = dir }
}

// HasCheckpoint reports whether dir holds a committed session
// checkpoint that Resume can reopen.
func HasCheckpoint(dir string) bool { return storage.HasCheckpoint(dir) }

// Resume reopens the session checkpointed in dir at its recorded step
// count: the next Step is step N+1, and the canonical merged output of
// every subsequent step is byte-identical to the uninterrupted
// session's (the crash-at-step-N fault-injection tests pin this). cfg
// must agree with the checkpoint on domain, periodicity, ghost size,
// and decomposition kind; the block count comes from the checkpoint.
func Resume(cfg Config, dir string) (*Session, error) {
	s, err := core.ResumeSession(cfg, dir)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

package tess

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/nbody"
)

func TestConfigOptions(t *testing.T) {
	rec := NewRecorder(4)
	plan := &FaultPlan{Seed: 1}
	cfg := NewPeriodicConfig(8,
		WithWorkers(3),
		WithGhostSize(3),
		WithStallTimeout(5*time.Second),
		WithRecorder(rec),
		WithFaults(plan),
		WithOutput("out.bin"),
	)
	if cfg.Workers != 3 {
		t.Errorf("Workers = %d", cfg.Workers)
	}
	if cfg.GhostSize != 3 {
		t.Errorf("GhostSize = %v", cfg.GhostSize)
	}
	if cfg.StallTimeout != 5*time.Second {
		t.Errorf("StallTimeout = %v", cfg.StallTimeout)
	}
	if cfg.Recorder != rec || cfg.Faults != plan || cfg.OutputPath != "out.bin" {
		t.Error("pointer/path options not applied")
	}
	if !cfg.Periodic || !cfg.HullPass {
		t.Error("defaults lost when options applied")
	}
	// Later options win over earlier ones.
	cfg = NewPeriodicConfig(8, WithGhostSize(2), WithGhostSize(3))
	if cfg.GhostSize != 3 {
		t.Errorf("last option should win, GhostSize = %v", cfg.GhostSize)
	}
}

// The public Session must reproduce Run byte-for-byte across repeated
// warm steps.
func TestPublicSessionMatchesRun(t *testing.T) {
	cfg := NewPeriodicConfig(8, WithGhostSize(3))
	sess, err := Open(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, seed := range []int64{96, 97, 98} {
		ps := testParticles(seed, 8, 8)
		got, err := sess.Step(ps)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(cfg, ps, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Counts != want.Counts {
			t.Errorf("seed %d: counts %+v, want %+v", seed, got.Counts, want.Counts)
		}
		for r := range got.Meshes {
			gb, err := got.Meshes[r].Encode()
			if err != nil {
				t.Fatal(err)
			}
			wb, err := want.Meshes[r].Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gb, wb) {
				t.Errorf("seed %d: block %d differs from Run", seed, r)
			}
		}
	}
	if sess.Steps() != 3 {
		t.Errorf("Steps() = %d", sess.Steps())
	}
	warm, cold := sess.WarmStats()
	if warm+cold != 3*512 {
		t.Errorf("warm %d + cold %d != %d", warm, cold, 3*512)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(nil); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("step after Close: %v", err)
	}
}

func TestPublicSessionStepTo(t *testing.T) {
	cfg := NewPeriodicConfig(8, WithGhostSize(3))
	sess, err := Open(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	path := t.TempDir() + "/step.out"
	if _, err := sess.StepTo(testParticles(96, 8, 8), path); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTessFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 512 {
		t.Errorf("read back %d records", len(recs))
	}
}

// A hook error aborts the in situ run cleanly with the step identified.
func TestRunInSituHookError(t *testing.T) {
	cfg := InSituConfig{
		Sim:    nbody.DefaultConfig(8),
		Tess:   NewPeriodicConfig(8, WithGhostSize(3)),
		Steps:  10,
		Every:  5,
		Blocks: 2,
	}
	calls := 0
	snaps, err := RunInSitu(cfg, func(s Snapshot) error {
		calls++
		return errDeliberate
	})
	if err == nil || !strings.Contains(err.Error(), "hook") || !strings.Contains(err.Error(), "step 5") {
		t.Fatalf("err = %v, want hook error naming step 5", err)
	}
	if calls != 1 {
		t.Errorf("hook ran %d times after erroring", calls)
	}
	if snaps != nil {
		t.Errorf("got %d snapshots from aborted run", len(snaps))
	}
}

type deliberateError struct{}

func (deliberateError) Error() string { return "deliberate test failure" }

var errDeliberate = deliberateError{}

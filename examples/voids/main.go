// Void finding: evolve a clustered particle distribution, tessellate it,
// and identify cosmological voids as connected components of large Voronoi
// cells — the paper's Figure 9 pipeline, with Minkowski functionals
// characterizing each void's geometry (Sec. III-D).
//
// Run with: go run ./examples/voids
package main

import (
	"fmt"
	"log"

	tess "repro"
	"repro/internal/nbody"
	"repro/internal/voids"
)

func main() {
	log.SetFlags(0)

	// Evolve 16^3 particles until halos and voids have formed.
	const ng = 16
	sim, err := nbody.New(nbody.DefaultConfig(ng))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("simulating 100 steps")
	sim.Run(100, func(s *nbody.Simulation) {
		if s.Step%20 == 0 {
			fmt.Print(".")
		}
	})
	fmt.Println(" done")

	cfg := tess.NewPeriodicConfig(float64(ng))
	// Evolved boxes grow large void cells; use the widest valid ghost.
	if g, err := tess.MaxGhostFor(cfg, 8); err == nil {
		cfg.GhostSize = g
	}
	out, err := tess.Tessellate(cfg, tess.ParticlesFromSim(sim), 8)
	if err != nil {
		log.Fatal(err)
	}
	var recs []tess.CellRecord
	for bi, m := range out.Meshes {
		recs = append(recs, voids.CellsFromMesh(m, bi)...)
	}

	// Progressive thresholding (Fig. 9): raising the minimum cell volume
	// strips away the dense regions and reveals distinct voids.
	fmt.Println("\nprogressive volume thresholds:")
	fmt.Printf("%-12s %-10s %-12s\n", "minVolume", "cells", "voids")
	for _, th := range []float64{0, 0.5, 1.0, 1.5, 2.0, 3.0} {
		comps := tess.FindVoids(recs, th)
		n := 0
		for _, c := range comps {
			n += len(c.CellIDs)
		}
		fmt.Printf("%-12.2f %-10d %-12d\n", th, n, len(comps))
	}

	// The watershed alternative (ZOBOV lineage): density basins flooded to
	// a barrier, no global threshold needed.
	zonesVoids, err := tess.FindVoidsWatershed(recs, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	zonesOnly, err := tess.FindVoidsWatershed(recs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwatershed: %d density basins, %d voids after flooding to barrier 0.5\n",
		len(zonesOnly), len(zonesVoids))

	// Characterize the voids at a fixed threshold.
	const threshold = 2.0
	comps := tess.FindVoids(recs, threshold)
	fmt.Printf("\nvoids at threshold %.1f (largest first):\n", threshold)
	fmt.Printf("%-6s %-7s %10s %10s %8s %8s %8s\n",
		"void", "cells", "volume", "area", "thick", "breadth", "length")
	for i, c := range comps {
		if i >= 8 {
			fmt.Printf("... and %d more\n", len(comps)-8)
			break
		}
		mk := c.Functionals
		fmt.Printf("%-6d %-7d %10.2f %10.2f %8.3f %8.3f %8.3f\n",
			i+1, len(c.CellIDs), mk.Volume, mk.Area, mk.Thickness, mk.Breadth, mk.Length)
	}
}

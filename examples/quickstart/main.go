// Quickstart: tessellate a random point set with the public tess API,
// print summary statistics, and export the mesh for visualization.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	tess "repro"
	"repro/internal/meshio"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1000 random unit-mass particles in a periodic 10^3 box.
	const L = 10.0
	rng := rand.New(rand.NewSource(42))
	pos := make([]tess.Vec3, 1000)
	for i := range pos {
		pos[i] = tess.Vec3{X: rng.Float64() * L, Y: rng.Float64() * L, Z: rng.Float64() * L}
	}
	particles := tess.ParticlesFromPositions(pos)

	// Tessellate over 8 parallel blocks. The ghost size must exceed twice
	// the largest expected cell radius; 3 units is generous for ~1-unit
	// mean spacing.
	cfg := tess.NewPeriodicConfig(L)
	cfg.GhostSize = 3
	out, err := tess.Tessellate(cfg, particles, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tessellated %d particles into %d cells "+
		"(exchange %v, compute %v)\n",
		len(particles), out.Counts.Kept, out.Timing.Exchange, out.Timing.Compute)

	// Cell volumes partition the box.
	vols := out.Volumes()
	m := stats.ComputeMoments(vols)
	var total float64
	for _, v := range vols {
		total += v
	}
	fmt.Printf("volume: total %.3f (box %.0f), mean %.3f, min %.3f, max %.3f\n",
		total, L*L*L, m.Mean, m.Min, m.Max)
	fmt.Printf("volume distribution: skewness %.2f, kurtosis %.2f\n", m.Skewness, m.Kurtosis)

	// Per-cell rows: ID, position, volume, area, face count.
	sums := out.Summaries()
	fmt.Printf("first cell: id=%d site=%v volume=%.3f area=%.3f faces=%d\n",
		sums[0].ID, sums[0].Site, sums[0].Volume, sums[0].Area, sums[0].Faces)

	// Export everything as legacy VTK for ParaView-style inspection.
	f, err := os.Create("quickstart.vtk")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var meshes []*meshio.BlockMesh
	meshes = append(meshes, out.Meshes...)
	if err := meshio.WriteVTK(f, meshes); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.vtk")
}

// Framework: the full in situ cosmology-tools workflow of the paper's
// Figure 4 through the public API — a configuration deck enables several
// level-1 analyses at different cadences, results are published to a live
// HTTP endpoint while the run progresses (the Catalyst role), and the void
// components are tracked across snapshots into a feature tree at the end.
//
// Run with: go run ./examples/framework
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	tess "repro"
)

const deck = `
[tess]
every = 15
blocks = 8
write = false

[halo]
every = 15
linking_length = 0.2
min_members = 8

[voids]
every = 15
blocks = 8

[powerspec]
every = 30
bins = 6
`

func main() {
	log.SetFlags(0)

	simCfg := tess.NewSimConfig(16)
	cfg, err := tess.ParseToolsConfig(strings.NewReader(deck))
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := tess.NewPipeline(cfg, simCfg, "")
	if err != nil {
		log.Fatal(err)
	}

	// Live endpoint (an httptest server keeps the example self-contained;
	// a production run would use http.ListenAndServe).
	live := tess.NewLiveServer()
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()
	fmt.Printf("live results at %s\n\n", srv.URL)

	sim, err := tess.NewSimulation(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	hook := live.Attach(pipeline, 45)
	sim.Run(45, func(s *tess.Simulation) {
		before := len(pipeline.Results)
		hook(s)
		for _, r := range pipeline.Results[before:] {
			fmt.Printf("step %3d  %-10s %s\n", r.Step, r.Analysis, r.Summary)
		}
	})
	if err := pipeline.Err(); err != nil {
		log.Fatal(err)
	}

	// Query the live endpoint the way an external viewer would.
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		log.Fatal(err)
	}
	var status tess.LiveStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nlive status: step %d/%d, %d particles\n",
		status.Step, status.TotalSteps, status.Particles)

	// Track the voids across the three snapshots.
	tree, err := pipeline.VoidTree(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvoid evolution (feature tree events):")
	for i := 0; i+1 < len(tree.Snapshots); i++ {
		events, err := tree.EventsAt(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d -> %d: ", tree.Snapshots[i].Step, tree.Snapshots[i+1].Step)
		counts := map[string]int{}
		for _, e := range events {
			counts[e.Type.String()]++
		}
		fmt.Printf("%v\n", counts)
	}
	if len(tree.Snapshots) > 0 && len(tree.Snapshots[0].Features) > 0 {
		fmt.Printf("\nlineage of the largest initial void: feature indices %v\n",
			tree.Lineage(0))
	}
}

// Density reconstruction: two tessellation-based density estimators on the
// same evolving particle set.
//
//  1. The Voronoi estimator used by the paper's Figure 11: cell density is
//     the inverse cell volume (unit masses), and the density contrast
//     delta = (d - mean)/mean steepens as structure forms — its skewness
//     and kurtosis grow with time, marking the breakdown of perturbation
//     theory.
//  2. The DTFE (Delaunay Tessellation Field Estimator) from the paper's
//     background lineage (ZOBOV, Watershed Void Finder), reconstructing a
//     continuous field that can be sampled on a grid.
//
// Run with: go run ./examples/density
package main

import (
	"fmt"
	"log"

	tess "repro"
	"repro/internal/cosmo"
	"repro/internal/dtfe"
	"repro/internal/nbody"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	const ng = 16
	cfg := tess.InSituConfig{
		Sim:    nbody.DefaultConfig(ng),
		Tess:   tess.NewPeriodicConfig(ng),
		Steps:  60,
		Every:  20,
		Blocks: 8,
	}

	fmt.Println("Voronoi cell density contrast over time (Figure 11):")
	fmt.Printf("%-6s %10s %10s %12s %12s\n", "step", "min", "max", "skewness", "kurtosis")
	snaps, err := tess.RunInSitu(cfg, func(s tess.Snapshot) error {
		vols := s.Output.Volumes()
		dens := make([]float64, len(vols))
		for i, v := range vols {
			dens[i] = 1 / v
		}
		delta := cosmo.DensityContrast(dens)
		m := stats.ComputeMoments(delta)
		fmt.Printf("%-6d %10.3f %10.3f %12.3f %12.3f\n",
			s.Step, m.Min, m.Max, m.Skewness, m.Kurtosis)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// DTFE on the final particle state.
	last := snaps[len(snaps)-1]
	var sites []tess.Vec3
	for _, s := range last.Output.Summaries() {
		sites = append(sites, s.Site)
	}
	field, err := dtfe.Estimate(sites, nil)
	if err != nil {
		log.Fatal(err)
	}
	grid, _ := field.SampleGrid(8, tess.Box{Max: tess.Vec3{X: ng, Y: ng, Z: ng}})
	gm := stats.ComputeMoments(grid)
	fmt.Printf("\nDTFE field sampled on an 8^3 grid at step %d:\n", last.Step)
	fmt.Printf("  mean %.3f, max %.3f, skewness %.2f (clustered field reads highly skewed)\n",
		gm.Mean, gm.Max, gm.Skewness)

	// Cross-check the two estimators at the densest site.
	var densest tess.CellSummary
	densest.Volume = 1e300
	for _, s := range last.Output.Summaries() {
		if s.Volume < densest.Volume {
			densest = s
		}
	}
	voroD := 1 / densest.Volume
	dtfeD, err := field.DensityAt(densest.Site)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndensest site %v: Voronoi density %.2f, DTFE density %.2f\n",
		densest.Site, voroD, dtfeD)
}

// In situ analysis: the paper's headline scenario. A cosmological N-body
// simulation (the particle-mesh HACC stand-in) runs for 60 steps, and the
// tessellation is computed in situ every 20 steps, with results written to
// storage for postprocessing — the workflow of the paper's Figure 4.
//
// Run with: go run ./examples/insitu
package main

import (
	"fmt"
	"log"
	"os"

	tess "repro"
	"repro/internal/nbody"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	const ng = 16 // 16^3 = 4096 particles in a 16^3 box
	dir, err := os.MkdirTemp("", "insitu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writing tessellations to %s\n", dir)

	cfg := tess.InSituConfig{
		Sim:       nbody.DefaultConfig(ng),
		Tess:      tess.NewPeriodicConfig(ng),
		Steps:     60,
		Every:     20,
		Blocks:    8,
		OutputDir: dir,
	}

	snaps, err := tess.RunInSitu(cfg, func(s tess.Snapshot) error {
		vols := s.Output.Volumes()
		m := stats.ComputeMoments(vols)
		fmt.Printf("step %3d: %5d cells, sim %8v, tess %8v, "+
			"volume skewness %.2f, output %.2f MB\n",
			s.Step, s.Output.Counts.Kept, s.SimTime.Round(1e6), s.TessTime.Round(1e6),
			m.Skewness, float64(s.Output.Timing.OutputBytes)/1e6)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Postprocess the final snapshot: read it back and look at the
	// incomplete/complete accounting and the densest/emptiest regions.
	last := snaps[len(snaps)-1]
	path := fmt.Sprintf("%s/tess-step-%04d.out", dir, last.Step)
	recs, err := tess.ReadTessFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var minRec, maxRec tess.CellRecord
	minRec.Volume = 1e300
	for _, r := range recs {
		if r.Volume < minRec.Volume {
			minRec = r
		}
		if r.Volume > maxRec.Volume {
			maxRec = r
		}
	}
	fmt.Printf("\nfinal snapshot (%d cells):\n", len(recs))
	fmt.Printf("  densest region: particle %d at %v (cell volume %.4f)\n",
		minRec.ID, minRec.Site, minRec.Volume)
	fmt.Printf("  emptiest region: particle %d at %v (cell volume %.4f)\n",
		maxRec.ID, maxRec.Site, maxRec.Volume)

	// Structure formation signature: the volume distribution's skewness
	// grows monotonically over the snapshots.
	fmt.Println("\nvolume skewness over time (structure formation):")
	for _, s := range snaps {
		m := stats.ComputeMoments(s.Output.Volumes())
		fmt.Printf("  step %3d: %.3f\n", s.Step, m.Skewness)
	}
}

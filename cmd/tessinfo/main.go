// Command tessinfo inspects a tess output file: per-block shape, the
// Sec. III-C2 data-model statistics, and volume summary statistics. It is
// the quick sanity check for files produced by the in situ pipeline before
// loading them into heavier postprocessing.
//
// Usage:
//
//	tessinfo FILE [-blocks] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/diy"
	"repro/internal/meshio"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tessinfo: ")
	var (
		perBlock  = flag.Bool("blocks", false, "print a row per block")
		showStats = flag.Bool("stats", true, "print volume statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: tessinfo [-blocks] [-stats] FILE")
	}
	path := flag.Arg(0)

	blocks, err := diy.ReadAllBlocks(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d blocks\n", path, len(blocks))

	var totals meshio.Stats
	var vols []float64
	var incomplete int
	if *perBlock {
		fmt.Printf("%-6s %8s %8s %10s %12s %12s\n",
			"block", "cells", "verts", "faces/cell", "verts/face", "B/particle")
	}
	for bi, data := range blocks {
		m, err := meshio.DecodeBlockMesh(data)
		if err != nil {
			log.Fatalf("block %d: %v", bi, err)
		}
		s := m.ComputeStats()
		totals.Cells += s.Cells
		totals.Faces += s.Faces
		totals.FaceVertRefs += s.FaceVertRefs
		totals.UniqueVerts += s.UniqueVerts
		totals.GeometryBytes += s.GeometryBytes
		totals.ConnectivityBytes += s.ConnectivityBytes
		vols = append(vols, m.Volumes...)
		for _, c := range m.Complete {
			if !c {
				incomplete++
			}
		}
		if *perBlock {
			fmt.Printf("%-6d %8d %8d %10.1f %12.1f %12.0f\n",
				bi, s.Cells, s.UniqueVerts, s.FacesPerCell, s.VertsPerFace, s.BytesPerParticle)
		}
	}

	fmt.Printf("cells %d (%d incomplete)   vertices %d\n",
		totals.Cells, incomplete, totals.UniqueVerts)
	if totals.Cells > 0 && totals.Faces > 0 {
		fmt.Printf("data model: %.1f faces/cell, %.1f verts/face, %.0f B/particle "+
			"(%.0f%% geometry / %.0f%% connectivity)\n",
			float64(totals.Faces)/float64(totals.Cells),
			float64(totals.FaceVertRefs)/float64(totals.Faces),
			float64(totals.GeometryBytes+totals.ConnectivityBytes)/float64(totals.Cells),
			100*float64(totals.GeometryBytes)/float64(totals.GeometryBytes+totals.ConnectivityBytes),
			100*float64(totals.ConnectivityBytes)/float64(totals.GeometryBytes+totals.ConnectivityBytes))
	}
	if *showStats && len(vols) > 0 {
		m := stats.ComputeMoments(vols)
		fmt.Printf("volumes: mean %.4f  min %.4f  max %.4f  skewness %.2f  kurtosis %.2f\n",
			m.Mean, m.Min, m.Max, m.Skewness, m.Kurtosis)
		fmt.Printf("quartiles: %.4f / %.4f / %.4f\n",
			stats.Quantile(vols, 0.25), stats.Quantile(vols, 0.5), stats.Quantile(vols, 0.75))
	}
}

// Command voidfind is the postprocessing tool standing in for the paper's
// ParaView cosmology-tools plugin (Sec. III-D, Fig. 7): it reads a tess
// output file, applies a volume threshold, labels connected components
// (voids), and prints the Minkowski functionals and shapefinders of each
// component. With -sweep it reproduces the Figure 9 experiment instead:
// progressive thresholds revealing a small number of distinct voids.
//
// When no input file is given, it generates one by running the built-in
// simulation and tessellating in situ (convenient for a self-contained
// demo).
//
// Usage:
//
//	voidfind [-in FILE] [-minvol 1.0] [-sweep 0,0.5,0.75,1.0] [-top 10]
//	         [-ng 16] [-steps 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/nbody"
	"repro/internal/voids"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voidfind: ")
	var (
		in     = flag.String("in", "", "tess output file (empty: simulate and tessellate first)")
		minvol = flag.Float64("minvol", 0, "volume threshold; 0 picks the mean cell volume")
		sweep  = flag.String("sweep", "", "comma-separated thresholds for the Fig. 9 sweep (overrides -minvol)")
		top    = flag.Int("top", 10, "print at most this many components")
		ng     = flag.Int("ng", 16, "self-demo: particles per dimension")
		steps  = flag.Int("steps", 100, "self-demo: simulation steps")
		grav   = flag.Float64("G", 1.0, "self-demo: gravity coupling (1.0 forms distinct voids; the Fig. 11 schedule uses 0.5)")
	)
	flag.Parse()

	path := *in
	if path == "" {
		var err error
		path, err = generate(*ng, *steps, *grav)
		if err != nil {
			log.Fatal(err)
		}
		defer os.Remove(path)
	}
	cells, err := voids.ReadTessFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d cells from %s\n", len(cells), path)

	if *sweep != "" {
		ths, err := parseFloats(*sweep)
		if err != nil {
			log.Fatalf("bad -sweep: %v", err)
		}
		fmt.Println("\nFIGURE 9: progressive volume thresholds reveal voids")
		fmt.Printf("%-12s %-10s %-12s %-14s\n", "MinVolume", "Cells", "Components", "LargestVol")
		for _, row := range voids.ThresholdSweep(cells, ths) {
			fmt.Printf("%-12g %-10d %-12d %-14.2f\n",
				row.MinVolume, row.Cells, row.Components, row.LargestVolume)
		}
		return
	}

	th := *minvol
	if th <= 0 {
		var sum float64
		for _, c := range cells {
			sum += c.Volume
		}
		th = sum / float64(len(cells))
		fmt.Printf("threshold defaulted to mean cell volume %.3f\n", th)
	}
	surviving := voids.Threshold(cells, th)
	comps := voids.ConnectedComponents(surviving)
	fmt.Printf("%d cells survive threshold %.3f, forming %d components\n\n",
		len(surviving), th, len(comps))

	fmt.Println("FIGURE 7: Minkowski functionals of connected components")
	fmt.Printf("%-8s %-7s %10s %10s %10s %6s %6s %8s %8s %8s\n",
		"Label", "Cells", "Volume", "Area", "Curv", "Chi", "Genus", "Thick", "Breadth", "Length")
	for i, c := range comps {
		if i >= *top {
			fmt.Printf("... and %d more components\n", len(comps)-*top)
			break
		}
		mk := c.Functionals
		fmt.Printf("%-8d %-7d %10.2f %10.2f %10.2f %6d %6.1f %8.3f %8.3f %8.3f\n",
			c.Label, len(c.CellIDs), mk.Volume, mk.Area, mk.MeanCurvature,
			mk.EulerChi, mk.Genus(), mk.Thickness, mk.Breadth, mk.Length)
	}
}

// generate runs the self-contained demo pipeline and returns the written
// tessellation file path.
func generate(ng, steps int, grav float64) (string, error) {
	fmt.Printf("no input file: simulating %d^3 particles for %d steps (G=%g)\n", ng, steps, grav)
	simCfg := nbody.DefaultConfig(ng)
	simCfg.G = grav
	sim, err := nbody.New(simCfg)
	if err != nil {
		return "", err
	}
	sim.Run(steps, nil)
	particles := make([]diy.Particle, len(sim.Pos))
	for i, p := range sim.Pos {
		particles[i] = diy.Particle{ID: int64(i), Pos: p}
	}
	dir, err := os.MkdirTemp("", "voidfind")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "demo.tess")
	const blocks = 8
	L := sim.Config.BoxSize
	d, err := diy.Decompose(geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)), blocks, true)
	if err != nil {
		return "", err
	}
	// Evolved snapshots grow large void cells; use the widest valid ghost.
	ghost := core.MaxGhost(d)
	cfg := core.Config{
		Domain:     geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)),
		Periodic:   true,
		GhostSize:  ghost,
		OutputPath: path,
	}
	if _, err := core.Run(cfg, particles, blocks); err != nil {
		return "", err
	}
	return path, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// Command accuracy regenerates Table I of the paper: the accuracy of the
// parallel tessellation versus a serial reference as a function of ghost
// zone size and block count. The paper ran 64^3 particles for 100 steps;
// the default here is 16^3 for 60 steps (pass -ng/-steps to change).
//
// Cells are compared by particle ID: a parallel cell matches when its face
// count equals the reference's and its volume agrees to relative tolerance.
// Incomplete cells are kept (not deleted) so that the damage done by an
// insufficient ghost region is measured rather than hidden, exactly as in
// the paper's study.
//
// Usage:
//
//	accuracy [-ng 16] [-steps 60] [-ghosts 0,1,2,3,4] [-blocks 2,4,8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/nbody"
	"repro/internal/voronoi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("accuracy: ")
	var (
		ng     = flag.Int("ng", 16, "particles per dimension (power of two)")
		steps  = flag.Int("steps", 60, "simulation steps before tessellating")
		ghosts = flag.String("ghosts", "0,1,2,3,4", "ghost sizes to test")
		blocks = flag.String("blocks", "2,4,8", "block counts to test")
		tol    = flag.Float64("tol", 1e-6, "relative volume tolerance for a match")
	)
	flag.Parse()

	ghostList, err := parseFloats(*ghosts)
	if err != nil {
		log.Fatalf("bad -ghosts: %v", err)
	}
	blockList, err := parseInts(*blocks)
	if err != nil {
		log.Fatalf("bad -blocks: %v", err)
	}

	// Evolve the particles.
	simCfg := nbody.DefaultConfig(*ng)
	sim, err := nbody.New(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(*steps, nil)
	particles := make([]diy.Particle, len(sim.Pos))
	pts := make([]geom.Vec3, len(sim.Pos))
	ids := make([]int64, len(sim.Pos))
	for i, p := range sim.Pos {
		particles[i] = diy.Particle{ID: int64(i), Pos: p}
		pts[i] = p
		ids[i] = int64(i)
	}
	L := simCfg.BoxSize

	// Serial reference: the full periodic tessellation in one piece.
	cells, err := voronoi.ComputePeriodic(pts, ids, L, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	ref := make([]core.CellSummary, len(cells))
	for i, c := range cells {
		ref[i] = core.CellSummary{
			ID: c.SiteID, Site: c.Site, Volume: c.Volume(), Area: c.Area(),
			Faces: len(c.Faces), Complete: c.Complete,
		}
	}

	fmt.Printf("TABLE I: PARALLEL ACCURACY (%d^3 particles, %d steps)\n\n", *ng, *steps)
	fmt.Printf("%-10s %-16s %-8s %-15s %-10s\n",
		"GhostSize", "Cells in Serial", "Blocks", "MatchingCells", "%Accuracy")
	for _, g := range ghostList {
		for bi, b := range blockList {
			cfg := core.Config{
				Domain:         geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)),
				Periodic:       true,
				GhostSize:      g,
				KeepIncomplete: true,
				HullPass:       true,
			}
			out, err := core.Run(cfg, particles, b)
			if err != nil {
				log.Fatalf("ghost=%g blocks=%d: %v", g, b, err)
			}
			rep := core.CompareAccuracy(ref, out.Summaries(), *tol)
			serialCol := ""
			if bi == 0 {
				serialCol = fmt.Sprintf("%d", len(ref))
			}
			ghostCol := ""
			if bi == 0 {
				ghostCol = fmt.Sprintf("%g", g)
			}
			fmt.Printf("%-10s %-16s %-8d %-15d %-10.2f\n",
				ghostCol, serialCol, b, rep.Matching, 100*rep.Accuracy)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the CLI to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package scratchmod

func Keys(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
`

const violatingSrc = `package scratchmod

func Keys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`

func TestInjectedViolationFails(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.23\n",
		"bad.go": violatingSrc,
	})
	var out, errOut strings.Builder
	if got := run([]string{"-C", dir, "./..."}, &out, &errOut); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, errOut.String())
	}
	if !strings.Contains(out.String(), "bad.go:") || !strings.Contains(out.String(), "[maporder]") {
		t.Errorf("output missing file:line or analyzer tag:\n%s", out.String())
	}
}

func TestCleanModulePasses(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module scratchmod\n\ngo 1.23\n",
		"clean.go": cleanSrc,
	})
	var out, errOut strings.Builder
	if got := run([]string{"-C", dir, "./..."}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, out.String(), errOut.String())
	}
}

func TestAnalyzerSubset(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.23\n",
		"bad.go": violatingSrc,
	})
	var out, errOut strings.Builder
	// The violation is maporder's; running only sendalias must pass.
	if got := run([]string{"-C", dir, "-run", "sendalias", "./..."}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, out.String(), errOut.String())
	}
	if got := run([]string{"-C", dir, "-run", "nosuch", "./..."}, &out, &errOut); got != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", got)
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if got := run([]string{"-list"}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d, want 0", got)
	}
	for _, name := range []string{
		"aborterr", "donesel", "hotalloc", "loanretain",
		"maporder", "phasepair", "scratchretain", "sendalias",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestJSONFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.23\n",
		"bad.go": violatingSrc,
	})
	var out, errOut strings.Builder
	if got := run([]string{"-C", dir, "-json", "./..."}, &out, &errOut); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.File != "bad.go" || f.Analyzer != "maporder" || f.Line == 0 || f.Message == "" {
		t.Errorf("finding fields wrong: %+v", f)
	}
}

func TestJSONClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module scratchmod\n\ngo 1.23\n",
		"clean.go": cleanSrc,
	})
	var out, errOut strings.Builder
	if got := run([]string{"-C", dir, "-json", "./..."}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, out.String(), errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("clean output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean module produced findings: %+v", findings)
	}
}

// TestJSONSubsetCombination pins -json composing with -run selection.
func TestJSONSubsetCombination(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.23\n",
		"bad.go": violatingSrc,
	})
	var out, errOut strings.Builder
	if got := run([]string{"-C", dir, "-json", "-run", "sendalias", "./..."}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, out.String(), errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("expected empty JSON array, got:\n%s", out.String())
	}
}

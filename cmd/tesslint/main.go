// Command tesslint runs the repository's static analyzers (internal/lint)
// over module packages and reports file:line:column diagnostics, exiting
// nonzero when it finds anything. It is part of the `make check` gate:
//
//	tesslint ./...                  # analyze the whole module
//	tesslint ./internal/voronoi     # analyze specific directories
//	tesslint -list                  # describe the analyzer suite
//	tesslint -run maporder ./...    # run a subset (comma-separated)
//	tesslint -json ./...            # machine-readable findings (CI)
//
// Analyzers share one interprocedural Program per invocation, built over
// the analyzed packages plus every module package they pull in through
// imports — so escape summaries see helpers even when only a subset of
// directories is being reported on.
//
// Diagnostics can be suppressed with a reasoned directive on the same
// line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("tesslint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	list := fl.Bool("list", false, "list analyzers and exit")
	sel := fl.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fl.String("C", ".", "directory to resolve the module from")
	asJSON := fl.Bool("json", false, "emit findings as a JSON array (machine-readable)")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *sel != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*sel, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "tesslint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	moduleDir, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "tesslint:", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(stderr, "tesslint:", err)
		return 2
	}

	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			loaded, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(stderr, "tesslint:", err)
				return 2
			}
			pkgs = append(pkgs, loaded...)
		default:
			pkg, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintln(stderr, "tesslint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	// The Program spans every package the loader touched — analyzed
	// targets plus module dependencies pulled in as imports — so summaries
	// cover helpers outside the reported-on set.
	prog := lint.BuildProgram(loader.Cached())
	diags := lint.RunProgram(prog, pkgs, analyzers)
	for i := range diags {
		pos := &diags[i].Pos
		if rel, err := filepath.Rel(moduleDir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	if *asJSON {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "tesslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "tesslint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the stable machine-readable schema of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits findings as one JSON array ([] when clean), so CI can
// parse the output without scraping text.
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

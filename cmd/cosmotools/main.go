// Command cosmotools runs the in situ analysis framework of the paper's
// Figure 4: a simulation with a configurable suite of level-1 analysis
// tools (tessellation, halo finding, multistream classification, power
// spectra, void finding) executed at selected time steps, with results
// written to storage and optionally published live over HTTP (the
// Catalyst/ParaView-server mode).
//
// Usage:
//
//	cosmotools [-config deck.cfg] [-ng 16] [-steps 60] [-out DIR]
//	           [-serve :8080] [-voidtree]
//
// Without -config, a default deck enabling every analysis is used; pass
// -print-config to see it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	tess "repro"
)

const defaultDeck = `# cosmology tools configuration (all analyses enabled)
[tess]
every = 20
blocks = 8
write = true

[halo]
every = 20
linking_length = 0.2
min_members = 10

[multistream]
every = 20

[powerspec]
every = 20
bins = 8

[voids]
every = 20
blocks = 8
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmotools: ")
	var (
		configPath  = flag.String("config", "", "configuration deck (default: built-in deck enabling everything)")
		printConfig = flag.Bool("print-config", false, "print the effective configuration and exit")
		ng          = flag.Int("ng", 16, "particles per dimension (power of two)")
		steps       = flag.Int("steps", 60, "simulation steps")
		outDir      = flag.String("out", "", "directory for analysis output files")
		serveAddr   = flag.String("serve", "", "serve live results over HTTP at this address (e.g. :8080)")
		voidtree    = flag.Bool("voidtree", false, "print the void feature tree events at the end")
	)
	flag.Parse()

	deck := defaultDeck
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		deck = string(data)
	}
	if *printConfig {
		fmt.Print(deck)
		return
	}
	cfg, err := tess.ParseToolsConfig(strings.NewReader(deck))
	if err != nil {
		log.Fatal(err)
	}

	simCfg := tess.NewSimConfig(*ng)
	pipeline, err := tess.NewPipeline(cfg, simCfg, *outDir)
	if err != nil {
		log.Fatal(err)
	}

	sim, err := tess.NewSimulation(simCfg)
	if err != nil {
		log.Fatal(err)
	}

	hook := pipeline.Hook(*steps)
	var live *tess.LiveServer
	if *serveAddr != "" {
		live = tess.NewLiveServer()
		hook = live.Attach(pipeline, *steps)
		go func() {
			log.Printf("serving live results at http://%s (endpoints: /status /results /results/latest /analyses)", *serveAddr)
			if err := http.ListenAndServe(*serveAddr, live.Handler()); err != nil {
				log.Fatal(err)
			}
		}()
	}

	fmt.Printf("running %d^3 particles for %d steps with analyses %v\n",
		*ng, *steps, tess.KnownAnalyses())
	sim.Run(*steps, func(s *tess.Simulation) {
		before := len(pipeline.Results)
		hook(s)
		for _, r := range pipeline.Results[before:] {
			fmt.Printf("step %4d  %-12s %8.1fms  %s\n",
				r.Step, r.Analysis, float64(r.Elapsed.Microseconds())/1e3, r.Summary)
		}
	})
	if err := pipeline.Err(); err != nil {
		log.Fatal(err)
	}

	if *voidtree {
		tree, err := pipeline.VoidTree(0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nvoid feature tree:")
		for i := 0; i+1 < len(tree.Snapshots); i++ {
			events, err := tree.EventsAt(i)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  step %d -> %d:\n", tree.Snapshots[i].Step, tree.Snapshots[i+1].Step)
			for _, e := range events {
				fmt.Printf("    %-13s from=%v to=%v\n", e.Type, e.From, e.To)
			}
		}
	}
}

// Command cellhist regenerates the paper's distribution figures:
//
//   - Figure 8 (-mode volume): the histogram of Voronoi cell volumes at the
//     end of a run, with the skewness and kurtosis the paper annotates
//     (100 bins over [0.02, 2] (Mpc/h)^3, skewness 8.9, kurtosis 85 at
//     t = 99 in the paper's 32^3 workstation test);
//   - Figure 11 (-mode delta): the cell density contrast distribution
//     delta = (d - mean)/mean (d = 1/volume for unit-mass particles) at a
//     sequence of time steps, whose range, skewness, and kurtosis grow as
//     structure forms.
//
// Usage:
//
//	cellhist [-mode volume|delta] [-ng 16] [-steps 100] [-at 11,21,31]
//	         [-bins 100] [-blocks 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/nbody"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellhist: ")
	var (
		mode   = flag.String("mode", "volume", "volume (Fig. 8) or delta (Fig. 11)")
		ng     = flag.Int("ng", 16, "particles per dimension (power of two)")
		steps  = flag.Int("steps", 100, "total simulation steps")
		at     = flag.String("at", "11,21,31", "delta mode: steps to snapshot")
		bins   = flag.Int("bins", 100, "histogram bins")
		blocks = flag.Int("blocks", 8, "parallel blocks")
		width  = flag.Int("width", 60, "histogram bar width")
	)
	flag.Parse()

	switch *mode {
	case "volume":
		volumeMode(*ng, *steps, *bins, *blocks, *width)
	case "delta":
		snaps, err := parseInts(*at)
		if err != nil {
			log.Fatalf("bad -at: %v", err)
		}
		deltaMode(*ng, *steps, snaps, *bins, *blocks, *width)
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
}

func tessellateNow(sim *nbody.Simulation, blocks int) []float64 {
	L := sim.Config.BoxSize
	particles := make([]diy.Particle, len(sim.Pos))
	for i, p := range sim.Pos {
		particles[i] = diy.Particle{ID: int64(i), Pos: p}
	}
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	d, err := diy.Decompose(domain, blocks, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Domain:   domain,
		Periodic: true,
		// Evolved snapshots grow large void cells; use the widest valid
		// ghost so every cell can be proven complete.
		GhostSize: core.MaxGhost(d),
	}
	out, err := core.Run(cfg, particles, blocks)
	if err != nil {
		log.Fatal(err)
	}
	if out.Counts.Incomplete > 0 {
		log.Printf("warning: %d incomplete cells deleted (ghost %g)", out.Counts.Incomplete, cfg.GhostSize)
	}
	return out.Volumes()
}

func volumeMode(ng, steps, bins, blocks, width int) {
	sim, err := nbody.New(nbody.DefaultConfig(ng))
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(steps, nil)
	vols := tessellateNow(sim, blocks)
	m := stats.ComputeMoments(vols)

	// The paper's Figure 8 binning: 100 bins over [0.02, 2].
	h := stats.NewHistogram(0.02, 2, bins)
	h.AddAll(vols)
	fmt.Printf("FIGURE 8: Histogram of Cell Volume at t = %d\n\n", sim.Step)
	fmt.Printf("cells %d   bins %d   range [%g, %g]   bin width %.3g\n",
		len(vols), bins, h.Lo, h.Hi, h.BinWidth())
	fmt.Printf("mean %.4f   skewness %.2f   kurtosis %.2f   under %d   over %d\n\n",
		m.Mean, m.Skewness, m.Kurtosis, h.Under, h.Over)
	fmt.Print(condensed(h, width))
	// The characteristic shape statistic the paper calls out: 75% of the
	// cells lie in the smallest 10% of the volume range.
	cut := m.Min + 0.1*(m.Max-m.Min)
	fmt.Printf("\nfraction of cells in smallest 10%% of volume range: %.0f%%\n",
		100*stats.FractionBelow(vols, cut))
}

func deltaMode(ng, steps int, snaps []int, bins, blocks, width int) {
	sim, err := nbody.New(nbody.DefaultConfig(ng))
	if err != nil {
		log.Fatal(err)
	}
	want := map[int]bool{}
	for _, s := range snaps {
		want[s] = true
	}
	fmt.Println("FIGURE 11: Cell density contrast distribution over time")
	sim.Run(steps, func(s *nbody.Simulation) {
		if !want[s.Step] {
			return
		}
		vols := tessellateNow(s, blocks)
		dens := make([]float64, len(vols))
		for i, v := range vols {
			dens[i] = 1 / v // unit masses: density is inverse volume
		}
		delta := cosmo.DensityContrast(dens)
		m := stats.ComputeMoments(delta)
		h := stats.NewHistogram(m.Min, m.Max+1e-9, bins)
		h.AddAll(delta)
		fmt.Printf("\n--- t = %d ---\n", s.Step)
		fmt.Printf("range [%.2f, %.2f]   bin width %.3g   skewness %.2g   kurtosis %.2g\n\n",
			m.Min, m.Max, h.BinWidth(), m.Skewness, m.Kurtosis)
		fmt.Print(condensed(h, width))
	})
}

// condensed prints at most ~25 bars by merging adjacent bins, keeping the
// output readable in a terminal.
func condensed(h *stats.Histogram, width int) string {
	const maxBars = 25
	merge := (len(h.Counts) + maxBars - 1) / maxBars
	out := stats.NewHistogram(h.Lo, h.Hi, (len(h.Counts)+merge-1)/merge)
	for i, c := range h.Counts {
		for k := 0; k < c; k++ {
			out.Add(h.BinCenter(i))
		}
	}
	return out.Render(width)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

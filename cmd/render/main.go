// Command render produces the paper's Figure 1 view: a PNG slice through
// the tessellated simulation box, colored by Voronoi cell density, showing
// irregular low-density voids amid clusters of high-density halos. Sites
// near the slice plane can be overlaid as markers.
//
// Input is either a tess output file (-in) or a fresh simulation
// (-ng/-steps). The slice plane, resolution, and color scale are flags.
//
// Usage:
//
//	render [-in FILE | -ng 16 -steps 100] [-z L/2] [-px 512] [-linear]
//	       [-marks] [-o slice.png]
package main

import (
	"flag"
	"fmt"
	"image"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/dtfe"
	"repro/internal/geom"
	"repro/internal/multistream"
	"repro/internal/nbody"
	"repro/internal/viz"
	"repro/internal/voids"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("render: ")
	var (
		in     = flag.String("in", "", "tess output file (empty: simulate first)")
		ng     = flag.Int("ng", 16, "simulation: particles per dimension")
		steps  = flag.Int("steps", 100, "simulation: steps")
		zFlag  = flag.Float64("z", -1, "slice height (default: box center)")
		px     = flag.Int("px", 512, "image side in pixels")
		linear = flag.Bool("linear", false, "linear density color scale (default log10)")
		marks  = flag.Bool("marks", false, "overlay site markers near the slice")
		field  = flag.String("field", "density", "density (Voronoi), dtfe, or streams (multistream; simulation input only)")
		out    = flag.String("o", "slice.png", "output PNG path")
	)
	flag.Parse()

	var sites []geom.Vec3
	var vols []float64
	var simPos []geom.Vec3 // lattice-ordered, for the multistream field
	var simNg int
	var L float64
	if *in != "" {
		recs, err := voids.ReadTessFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			sites = append(sites, r.Site)
			vols = append(vols, r.Volume)
			if r.Site.X > L {
				L = r.Site.X
			}
			if r.Site.Y > L {
				L = r.Site.Y
			}
			if r.Site.Z > L {
				L = r.Site.Z
			}
		}
		// Round the inferred box up to a whole unit.
		L = float64(int(L) + 1)
		fmt.Printf("read %d cells from %s (box ~%g)\n", len(sites), *in, L)
	} else {
		fmt.Printf("simulating %d^3 particles for %d steps\n", *ng, *steps)
		sim, err := nbody.New(nbody.DefaultConfig(*ng))
		if err != nil {
			log.Fatal(err)
		}
		sim.Run(*steps, nil)
		L = sim.Config.BoxSize
		particles := make([]diy.Particle, len(sim.Pos))
		for i, p := range sim.Pos {
			particles[i] = diy.Particle{ID: int64(i), Pos: p}
		}
		domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
		d, err := diy.Decompose(domain, 8, true)
		if err != nil {
			log.Fatal(err)
		}
		tcfg := core.Config{Domain: domain, Periodic: true, GhostSize: core.MaxGhost(d)}
		res, err := core.Run(tcfg, particles, 8)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range res.Summaries() {
			sites = append(sites, s.Site)
			vols = append(vols, s.Volume)
		}
		simPos = sim.Pos
		simNg = sim.Config.Ng
	}

	cfg := viz.NewSliceConfig(L)
	cfg.Pixels = *px
	cfg.LogScale = !*linear
	if *zFlag >= 0 {
		cfg.Z = *zFlag
	}
	var img *image.RGBA
	var err error
	switch *field {
	case "density":
		img, err = viz.RenderDensitySlice(sites, vols, cfg)
	case "dtfe":
		f, ferr := dtfe.Estimate(sites, nil)
		if ferr != nil {
			log.Fatal(ferr)
		}
		m := 64
		grid, sst := f.SampleGrid(m, geom.NewBox(geom.Vec3{}, geom.V(L, L, L)))
		if sst.Degenerate > 0 {
			log.Fatalf("dtfe: %d degenerate samples (broken triangulation)", sst.Degenerate)
		}
		img, err = viz.RenderGridSlice(grid, m, int(cfg.Z/L*float64(m))%m, *px, cfg.LogScale)
	case "streams":
		if simPos == nil {
			log.Fatal("-field streams requires a fresh simulation (no -in)")
		}
		ms, merr := multistream.Compute(simPos, simNg, L, 2*simNg)
		if merr != nil {
			log.Fatal(merr)
		}
		grid := make([]float64, len(ms.Streams))
		for i, v := range ms.Streams {
			grid[i] = float64(v)
		}
		m := 2 * simNg
		img, err = viz.RenderGridSlice(grid, m, int(cfg.Z/L*float64(m))%m, *px, false)
	default:
		log.Fatalf("unknown -field %q", *field)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *marks {
		viz.MarkSites(img, sites, L, cfg.Z, L/float64(*px))
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WritePNG(f, img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%dx%d, slice z=%.2f)\n", *out, *px, *px, cfg.Z)
}

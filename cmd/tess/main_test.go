package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// End-to-end acceptance: a 2-rank run with -trace must emit valid Chrome
// trace JSON with exchange/compute/output spans on both rank threads, and
// the per-rank comm byte counters must sum to the same totals an
// independent instrumented run of the identical configuration reduces to.
func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	meshPath := filepath.Join(dir, "mesh.bin")
	var buf bytes.Buffer
	err := run([]string{
		"-n", "6", "-blocks", "2", "-seed", "9",
		"-o", meshPath, "-trace", tracePath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "comm:") {
		t.Errorf("summary missing comm line:\n%s", buf.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	spans := map[int]map[string]bool{0: {}, 1: {}}
	sentByRank := map[int]float64{}
	recvdByRank := map[int]float64{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Tid != 0 && ev.Tid != 1 {
				t.Errorf("span on unexpected tid %d", ev.Tid)
				continue
			}
			if ev.Dur <= 0 {
				t.Errorf("span %q on tid %d has non-positive duration", ev.Name, ev.Tid)
			}
			spans[ev.Tid][ev.Name] = true
		case "C":
			if ev.Name == "comm-bytes" {
				sentByRank[ev.Tid], _ = ev.Args["sent"].(float64)
				recvdByRank[ev.Tid], _ = ev.Args["recvd"].(float64)
			}
		}
	}
	for tid := 0; tid <= 1; tid++ {
		for _, want := range []string{"exchange", "ghost-merge", "compute", "output"} {
			if !spans[tid][want] {
				t.Errorf("rank %d: no %q span in trace", tid, want)
			}
		}
	}

	// Independent run of the identical configuration: message and byte
	// counts are deterministic, so the trace counters must agree with the
	// reduced totals of the fresh snapshot.
	cfg := tess.NewPeriodicConfig(8)
	cfg.GhostSize = 3
	cfg.HullPass = false
	cfg.OutputPath = filepath.Join(dir, "mesh2.bin")
	cfg.Recorder = tess.NewRecorder(2)
	out, err := tess.Tessellate(cfg, latticeParticles(6, 8, 0.6, 9), 2)
	if err != nil {
		t.Fatal(err)
	}
	var traceSent, traceRecvd int64
	for tid := 0; tid <= 1; tid++ {
		traceSent += int64(sentByRank[tid])
		traceRecvd += int64(recvdByRank[tid])
	}
	if traceSent != out.Obs.TotalSentBytes {
		t.Errorf("trace sent bytes %d, independent run reduced %d", traceSent, out.Obs.TotalSentBytes)
	}
	if traceRecvd != out.Obs.TotalRecvdBytes {
		t.Errorf("trace recvd bytes %d, independent run reduced %d", traceRecvd, out.Obs.TotalRecvdBytes)
	}
	if traceSent == 0 {
		t.Error("trace recorded zero comm bytes")
	}
}

// The canonical merge flag must write a decodable mesh with one cell per
// particle, identical across block counts.
func TestRunCanonicalExport(t *testing.T) {
	dir := t.TempDir()
	var enc [][]byte
	for _, blocks := range []string{"1", "4"} {
		p := filepath.Join(dir, "canon"+blocks+".bin")
		var buf bytes.Buffer
		if err := run([]string{"-n", "5", "-blocks", blocks, "-seed", "3", "-canonical", p}, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		enc = append(enc, data)
	}
	if !bytes.Equal(enc[0], enc[1]) {
		t.Error("canonical meshes differ between 1-block and 4-block runs")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "0"}, &buf); err == nil {
		t.Error("n=0 accepted")
	}
}

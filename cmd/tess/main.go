// Command tess runs a standalone parallel Voronoi tessellation over a
// perturbed-lattice particle set and reports cell counts, per-phase
// timings, and communication counters from the always-on observability
// layer. With -trace it exports the run as Chrome trace-event JSON: one
// trace thread per rank with exchange / ghost-merge / compute / output
// spans, plus counter tracks for comm bytes and pipeline counters. Open
// the file in chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//	tess [-n 8] [-box 8] [-blocks 2] [-workers 0] [-seed 1] [-amp 0.6]
//	     [-ghost 3] [-o mesh.bin] [-trace out.json] [-canonical merged.bin]
//	     [-density 0] [-spectrum] [-density-o grid.bin]
//	     [-snapshot snap.bin [-window 4]] [-write-snapshot snap.bin [-chunks 16]]
//
// With -write-snapshot the generated lattice is written as a chunked
// snapshot file and the run stops there; with -snapshot the particles
// stream out-of-core from such a file through a bounded resident window
// (-window chunks at a time) instead of being generated in memory —
// output is byte-identical to the inline run over the same particles.
//
// With -density N the run additionally pushes the snapshot through the
// streaming density pipeline (DTFE interpolation onto an N^3 sample grid
// via a tessellation session) and prints the field statistics; -spectrum
// adds the binned power spectrum (N must be a power of two), and
// -density-o writes the raw little-endian float64 grid.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tess: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tess", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 8, "particles per dimension (n^3 total)")
		box       = fs.Float64("box", 8, "periodic box side length")
		blocks    = fs.Int("blocks", 2, "number of blocks (ranks)")
		workers   = fs.Int("workers", 0, "worker goroutines per rank (0 = auto)")
		seed      = fs.Int64("seed", 1, "lattice perturbation seed")
		amp       = fs.Float64("amp", 0.6, "perturbation amplitude (fraction of spacing)")
		ghost     = fs.Float64("ghost", 3, "ghost region size")
		decomp    = fs.String("decomp", "grid", "block decomposition: grid (equal volume) or rcb (equal particle counts)")
		outPath   = fs.String("o", "", "write block meshes to this file")
		trace     = fs.String("trace", "", "write Chrome trace-event JSON to this file")
		canonical = fs.String("canonical", "", "write the canonical merged mesh to this file")
		densityN  = fs.Int("density", 0, "density sample-grid resolution (0 = skip the density pipeline)")
		spectrum  = fs.Bool("spectrum", false, "with -density, also compute the power spectrum")
		densityO  = fs.String("density-o", "", "with -density, write the raw grid to this file")
		snapshot  = fs.String("snapshot", "", "stream particles out-of-core from this chunked snapshot file (see -write-snapshot) instead of generating a lattice")
		window    = fs.Int("window", 0, "with -snapshot, max chunks staged in memory at once (0 = unbounded)")
		writeSnap = fs.String("write-snapshot", "", "write the generated lattice to this chunked snapshot file and exit")
		chunks    = fs.Int("chunks", 16, "with -write-snapshot, number of chunks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 || *blocks <= 0 || *box <= 0 {
		return fmt.Errorf("-n, -blocks, and -box must be positive")
	}
	if *snapshot != "" && *densityN > 0 {
		return fmt.Errorf("-density needs the inline particle set; it cannot stream from -snapshot")
	}

	var ps []tess.Particle
	if *snapshot == "" {
		ps = latticeParticles(*n, *box, *amp, *seed)
	}
	if *writeSnap != "" {
		if ps == nil {
			return fmt.Errorf("-write-snapshot generates a lattice; drop -snapshot")
		}
		if err := tess.WriteSnapshot(*writeSnap, ps, *chunks); err != nil {
			return err
		}
		fmt.Fprintf(w, "snapshot: wrote %s (%d particles, %d chunks)\n", *writeSnap, len(ps), *chunks)
		return nil
	}
	cfg := tess.NewPeriodicConfig(*box)
	cfg.GhostSize = *ghost
	cfg.HullPass = false
	cfg.Workers = *workers
	cfg.OutputPath = *outPath
	cfg.Recorder = tess.NewRecorder(*blocks)
	switch *decomp {
	case "grid":
		cfg.Decomposition = tess.DecomposeRegular
	case "rcb":
		cfg.Decomposition = tess.DecomposeRCB
	default:
		return fmt.Errorf("-decomp must be grid or rcb, got %q", *decomp)
	}

	var out *tess.Output
	nparticles := len(ps)
	if *snapshot != "" {
		// Out-of-core: one streamed step through a session, the same code
		// path Run takes, with the file source's window bounding staging.
		src, err := tess.OpenFileSource(*snapshot, *window)
		if err != nil {
			return err
		}
		defer src.Close()
		sess, err := tess.Open(cfg, *blocks)
		if err != nil {
			return err
		}
		defer sess.Close()
		if out, err = sess.StepFrom(src); err != nil {
			return err
		}
		st := src.Stats()
		nparticles = st.TotalParticles
		fmt.Fprintf(w, "source: %s  %d chunks  loads %d  evictions %d  peak resident %d chunks / %d particles\n",
			*snapshot, src.Chunks(), st.Loads, st.Evictions,
			st.PeakResidentChunks, st.PeakResidentParticles)
	} else {
		var err error
		if out, err = tess.Run(cfg, ps, *blocks); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "particles %d  blocks %d  ghost %g\n", nparticles, *blocks, *ghost)
	fmt.Fprintf(w, "cells: kept %d  incomplete %d  culled %d\n",
		out.Counts.Kept, out.Counts.Incomplete, out.Counts.CulledEarly+out.Counts.CulledExact)
	fmt.Fprintf(w, "timing: exchange %v  compute %v  output %v  total %v\n",
		out.Timing.Exchange, out.Timing.Compute, out.Timing.Output, out.Timing.Total)
	s := out.Obs
	fmt.Fprintf(w, "comm: %d msgs  %d bytes sent  %d bytes received  imbalance %.2f\n",
		s.TotalSentMsgs, s.TotalSentBytes, s.TotalRecvdBytes, s.ComputeImbalance)
	fmt.Fprintf(w, "balance: decomp %s  compute imbalance %.2f (slowest/mean)  exchange imbalance %.2f\n",
		*decomp, s.Imbalance(tess.PhaseCompute), s.Imbalance(tess.PhaseExchange))

	if *trace != "" {
		if err := s.WriteTraceFile(*trace); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: %s\n", *trace)
	}
	if *densityN > 0 {
		if err := runDensity(w, cfg, ps, *blocks, *densityN, *spectrum, *densityO); err != nil {
			return err
		}
	}
	if *canonical != "" {
		m, err := tess.MergeCanonical(out.Meshes, cfg.Domain, cfg.Periodic)
		if err != nil {
			return fmt.Errorf("canonical merge: %w", err)
		}
		data, err := m.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*canonical, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "canonical: %s (%d cells, %d bytes)\n", *canonical, m.NumCells(), len(data))
	}
	return nil
}

// runDensity pushes the snapshot through a session's density pipeline and
// prints the field statistics, percentiles, and (optionally) the low-k end
// of the power spectrum.
func runDensity(w io.Writer, cfg tess.Config, ps []tess.Particle, blocks, gridN int, spectrum bool, outPath string) error {
	sess, err := tess.Open(cfg, blocks)
	if err != nil {
		return err
	}
	defer sess.Close()
	res, err := sess.StepDensity(ps, tess.DensityConfig{GridN: gridN, Spectrum: spectrum})
	if err != nil {
		return fmt.Errorf("density pipeline: %w", err)
	}
	st := res.Stats
	fmt.Fprintf(w, "density: grid %d^3  tets %d  padded %d tracers\n", res.GridN, res.Tets, res.Padded)
	fmt.Fprintf(w, "density: mean %.4g  min %.4g  max %.4g  void frac %.3f\n",
		st.Mean, st.Min, st.Max, st.VoidFrac)
	fmt.Fprintf(w, "density: mass grid %.6g  tracers %.6g  (ratio %.4f)\n",
		st.GridMass, st.TracerMass, st.GridMass/st.TracerMass)
	for _, p := range st.Percentiles {
		fmt.Fprintf(w, "density: p%-4g %.4g\n", p.P, p.Value)
	}
	if spectrum {
		kmax := len(res.Spectrum)
		if kmax > 8 {
			kmax = 8
		}
		for _, b := range res.Spectrum[:kmax] {
			fmt.Fprintf(w, "spectrum: k %.4g  P %.6g  (%d modes)\n", b.K, b.Power, b.Count)
		}
	}
	if outPath != "" {
		data := tess.EncodeDensityGrid(res.Grid)
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "density: wrote %s (%d bytes)\n", outPath, len(data))
	}
	return nil
}

// latticeParticles fills the box with a jittered n^3 lattice — the same
// quasi-uniform distribution the accuracy and scaling studies use.
func latticeParticles(n int, L, amp float64, seed int64) []tess.Particle {
	rng := rand.New(rand.NewSource(seed))
	h := L / float64(n)
	ps := make([]tess.Particle, 0, n*n*n)
	id := int64(0)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ps = append(ps, tess.Particle{ID: id, Pos: tess.Vec3{
					X: (float64(x)+0.5)*h + (rng.Float64()-0.5)*amp*h,
					Y: (float64(y)+0.5)*h + (rng.Float64()-0.5)*amp*h,
					Z: (float64(z)+0.5)*h + (rng.Float64()-0.5)*amp*h,
				}})
				id++
			}
		}
	}
	return ps
}

// Command sim runs the particle-mesh N-body simulation (the HACC stand-in)
// standalone, printing per-step diagnostics (kinetic energy, momentum
// drift, clustering amplitude) and optionally writing particle snapshots
// or a VTK export of the final tessellation.
//
// Usage:
//
//	sim [-ng 16] [-steps 50] [-every 10] [-snap-dir DIR] [-vtk FILE]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/nbody"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sim: ")
	var (
		ng      = flag.Int("ng", 16, "particles per dimension (power of two)")
		steps   = flag.Int("steps", 50, "simulation steps")
		every   = flag.Int("every", 10, "diagnostics every N steps")
		snapDir = flag.String("snap-dir", "", "write particle snapshots (text x y z) to this directory")
		vtkPath = flag.String("vtk", "", "write a VTK export of the final tessellation to this file")
		augPath = flag.String("augment", "", "write the final particles augmented with cell volume and density to this file (paper Sec. V)")
		seed    = flag.Int64("seed", 1, "initial conditions seed")
	)
	flag.Parse()

	cfg := nbody.DefaultConfig(*ng)
	cfg.Cosmo.Seed = *seed
	sim, err := nbody.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-6s %14s %14s %14s %14s\n", "step", "kinetic", "potential", "|momentum|", "sigma(delta)")
	report := func(s *nbody.Simulation) {
		fmt.Printf("%-6d %14.4f %14.4f %14.6f %14.4f\n",
			s.Step, s.KineticEnergy(), s.PotentialEnergy(), s.Momentum().Norm(), s.ClusteringAmplitude())
	}
	report(sim)
	sim.Run(*steps, func(s *nbody.Simulation) {
		if *every > 0 && s.Step%*every == 0 {
			report(s)
		}
		if *snapDir != "" && *every > 0 && s.Step%*every == 0 {
			if err := writeSnapshot(filepath.Join(*snapDir, fmt.Sprintf("snap-%04d.txt", s.Step)), s.Pos); err != nil {
				log.Fatal(err)
			}
		}
	})

	if *vtkPath != "" || *augPath != "" {
		meshes, err := tessellate(sim)
		if err != nil {
			log.Fatal(err)
		}
		if *vtkPath != "" {
			if err := writeVTK(meshes, *vtkPath); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote tessellation VTK to %s\n", *vtkPath)
		}
		if *augPath != "" {
			var aug []meshio.AugmentedParticle
			for _, m := range meshes {
				aug = append(aug, meshio.AugmentParticles(m)...)
			}
			data, err := meshio.EncodeAugmented(aug)
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*augPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %d augmented particles (%d bytes, %.0f B/particle) to %s\n",
				len(aug), len(data), float64(len(data))/float64(len(aug)), *augPath)
		}
	}
}

func writeSnapshot(path string, pos []geom.Vec3) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, p := range pos {
		fmt.Fprintf(w, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	return w.Flush()
}

func tessellate(sim *nbody.Simulation) ([]*meshio.BlockMesh, error) {
	L := sim.Config.BoxSize
	particles := make([]diy.Particle, len(sim.Pos))
	for i, p := range sim.Pos {
		particles[i] = diy.Particle{ID: int64(i), Pos: p}
	}
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	d, err := diy.Decompose(domain, 8, true)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Domain:    domain,
		Periodic:  true,
		GhostSize: core.MaxGhost(d),
	}
	out, err := core.Run(cfg, particles, 8)
	if err != nil {
		return nil, err
	}
	return out.Meshes, nil
}

func writeVTK(meshes []*meshio.BlockMesh, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return meshio.WriteVTK(f, meshes)
}

package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/faultinject"
	"repro/internal/geom"
)

// runFaultBattery exercises the failure model end to end on a small
// deterministic problem and reports PASS/FAIL per case. It is the
// command-line face of the fault-containment acceptance criteria; `make
// faults` and CI run it.
func runFaultBattery(seed int64) bool {
	fmt.Println("FAULT-INJECTION BATTERY (deterministic; seed", seed, ")")

	const ng, L = 6, 10.0
	particles := batteryParticles(ng, L)
	dir, err := os.MkdirTemp("", "tessfaults")
	if err != nil {
		fmt.Println("FAIL: temp dir:", err)
		return false
	}
	defer os.RemoveAll(dir)

	baseCfg := func() core.Config {
		return core.Config{
			Domain:       geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)),
			Periodic:     true,
			GhostSize:    3,
			StallTimeout: 5 * time.Second,
		}
	}

	ok := true
	check := func(name string, pass bool, detail string) {
		status := "PASS"
		if !pass {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("  %-52s %s  %s\n", name, status, detail)
	}

	// Crash containment: every (blocks, step) cell must return a
	// structured *comm.RankError carrying the injected *faultinject.Crash.
	for _, blocks := range []int{2, 8} {
		for step := 1; step <= 4; step++ {
			cfg := baseCfg()
			cfg.Faults = &faultinject.Plan{Seed: seed, CrashRank: blocks - 1, CrashStep: step}
			t0 := time.Now()
			_, err := core.Run(cfg, particles, blocks)
			elapsed := time.Since(t0)
			var re *comm.RankError
			var crash *faultinject.Crash
			pass := err != nil && errors.As(err, &re) && re.Rank == blocks-1 &&
				errors.As(err, &crash) && crash.Step == step
			check(fmt.Sprintf("crash rank=%d step=%d blocks=%d -> RankError", blocks-1, step, blocks),
				pass, fmt.Sprintf("(%v) %v", elapsed.Round(time.Millisecond), errShort(err)))
		}
	}

	// Stall diagnosis: a world with one rank missing from the collective
	// must be diagnosed by the watchdog, with a wait-for dump.
	{
		w := comm.NewWorld(4, comm.WithWatchdog(100*time.Millisecond))
		t0 := time.Now()
		err := w.Run(func(rank int) {
			if rank == 3 {
				return
			}
			comm.Allgather(w, rank, rank)
		})
		var se *comm.StallError
		pass := errors.As(err, &se) && len(se.Waits) == 4
		check("mismatched collective -> StallError wait-for dump", pass,
			fmt.Sprintf("(%v) %v", time.Since(t0).Round(time.Millisecond), errShort(err)))
	}

	// Delay transparency: a delay-only plan must leave the output file
	// byte-identical to a fault-free run.
	{
		write := func(name string, plan *faultinject.Plan) ([]byte, error) {
			cfg := baseCfg()
			cfg.OutputPath = filepath.Join(dir, name)
			cfg.Faults = plan
			if _, err := core.Run(cfg, particles, 4); err != nil {
				return nil, err
			}
			return os.ReadFile(cfg.OutputPath)
		}
		clean, err1 := write("clean.tess", nil)
		delayed, err2 := write("delayed.tess", &faultinject.Plan{
			Seed:            seed,
			ComputeDelayMax: 2 * time.Millisecond,
			SendDelayMax:    time.Millisecond,
		})
		pass := err1 == nil && err2 == nil && string(clean) == string(delayed)
		detail := fmt.Sprintf("%d bytes", len(clean))
		if err1 != nil || err2 != nil {
			detail = fmt.Sprintf("%v %v", err1, err2)
		} else if !pass {
			detail = fmt.Sprintf("%d vs %d bytes differ", len(clean), len(delayed))
		}
		check("delay-only run byte-identical to fault-free run", pass, detail)
	}

	if ok {
		fmt.Println("battery PASS")
	} else {
		fmt.Println("battery FAIL")
	}
	return ok
}

// batteryParticles is a fixed perturbed lattice: deterministic, small,
// and irregular enough to exercise the exchange on every block count.
func batteryParticles(ng int, L float64) []diy.Particle {
	rng := rand.New(rand.NewSource(1234))
	h := L / float64(ng)
	var ps []diy.Particle
	id := int64(0)
	for z := 0; z < ng; z++ {
		for y := 0; y < ng; y++ {
			for x := 0; x < ng; x++ {
				ps = append(ps, diy.Particle{
					ID: id,
					Pos: geom.V(
						(float64(x)+0.5)*h+(rng.Float64()-0.5)*0.4*h,
						(float64(y)+0.5)*h+(rng.Float64()-0.5)*0.4*h,
						(float64(z)+0.5)*h+(rng.Float64()-0.5)*0.4*h),
				})
				id++
			}
		}
	}
	return ps
}

// errShort truncates an error for battery output (stall dumps span many
// lines; one is enough here).
func errShort(err error) string {
	if err == nil {
		return "<nil>"
	}
	s := err.Error()
	for i, c := range s {
		if c == '\n' {
			return s[:i] + " ..."
		}
	}
	if len(s) > 100 {
		return s[:100] + "..."
	}
	return s
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/geom"
)

// The -density mode measures the streaming density pipeline: the
// steady-state per-snapshot cost of DTFE density estimation onto a sample
// grid plus the power spectrum, cold (one-shot density.Compute per step,
// rebuilding triangulation scratch, estimator accumulators, and grid
// buffers every time) versus warm (core.Session.StepDensity, everything
// retained). Grid bytes are identical on both paths — the benchmark
// verifies that before timing anything.

// densityBenchResult is the BENCH_density.json document.
type densityBenchResult struct {
	Ng        int             `json:"ng"`
	Particles int             `json:"particles"`
	GridN     int             `json:"grid_n"`
	Blocks    int             `json:"blocks"`
	Workers   int             `json:"workers"`
	Snapshots int             `json:"snapshots"`
	Spectrum  bool            `json:"spectrum"`
	Cold      insituBenchSide `json:"cold"`
	Warm      insituBenchSide `json:"warm"`
	// Speedup is cold ns / warm ns; AllocsRatio is cold allocs / warm.
	Speedup     float64 `json:"speedup"`
	AllocsRatio float64 `json:"allocs_ratio"`
	// MassRatio is the final snapshot's grid mass over tracer mass — the
	// conservation diagnostic, recorded so regressions show up in CI
	// artifacts.
	MassRatio float64 `json:"mass_ratio"`
}

func runDensityBench(jsonPath string) {
	const (
		ng      = 16
		gridN   = 32
		blocks  = 4
		workers = 2
		nsnaps  = 4
	)
	snaps := benchSnapshots(ng, nsnaps)
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(ng, ng, ng))
	cfg := core.Config{
		Domain:    domain,
		Periodic:  true,
		GhostSize: ghostFor(domain, blocks),
		Workers:   workers,
	}
	dc := density.Config{GridN: gridN, Spectrum: true}
	oracleCfg := dc
	oracleCfg.Box = domain
	oracleCfg.Periodic = true
	oracleCfg.Pad = cfg.GhostSize

	pts := make([][]geom.Vec3, len(snaps))
	for i, ps := range snaps {
		pts[i] = make([]geom.Vec3, len(ps))
		for j, p := range ps {
			pts[i][j] = p.Pos
		}
	}

	// Correctness gate before timing: warm session grids must be
	// byte-identical to the cold one-shot oracle on every snapshot.
	sess, err := core.OpenSession(cfg, blocks)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	var massRatio float64
	for i, ps := range snaps {
		res, err := sess.StepDensity(ps, dc)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := density.Compute(oracleCfg, pts[i], nil)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(density.EncodeGrid(res.Grid), density.EncodeGrid(ref.Grid)) {
			log.Fatalf("snapshot %d: warm grid differs from cold oracle", i)
		}
		massRatio = res.Stats.GridMass / res.Stats.TracerMass
	}

	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := density.Compute(oracleCfg, pts[i%len(pts)], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.StepDensity(snaps[i%len(snaps)], dc); err != nil {
				b.Fatal(err)
			}
		}
	})

	res := densityBenchResult{
		Ng:        ng,
		Particles: ng * ng * ng,
		GridN:     gridN,
		Blocks:    blocks,
		Workers:   workers,
		Snapshots: nsnaps,
		Spectrum:  true,
		Cold:      benchSide(cold),
		Warm:      benchSide(warm),
		MassRatio: massRatio,
	}
	if res.Warm.NsPerOp > 0 {
		res.Speedup = float64(res.Cold.NsPerOp) / float64(res.Warm.NsPerOp)
	}
	if res.Warm.AllocsPerOp > 0 {
		res.AllocsRatio = float64(res.Cold.AllocsPerOp) / float64(res.Warm.AllocsPerOp)
	}

	fmt.Println("DENSITY PIPELINE: cold (Compute per step) vs warm (Session.StepDensity)")
	fmt.Printf("%d^3 particles -> %d^3 grid + spectrum, %d blocks, %d workers/block, %d evolving snapshots\n\n",
		ng, gridN, blocks, workers, nsnaps)
	fmt.Printf("%-6s %12s %14s %14s\n", "", "ns/op", "allocs/op", "B/op")
	fmt.Printf("%-6s %12d %14d %14d\n", "cold", res.Cold.NsPerOp, res.Cold.AllocsPerOp, res.Cold.BytesPerOp)
	fmt.Printf("%-6s %12d %14d %14d\n", "warm", res.Warm.NsPerOp, res.Warm.AllocsPerOp, res.Warm.BytesPerOp)
	fmt.Printf("\nspeedup %.2fx, allocs ratio %.1fx, mass ratio %.4f\n",
		res.Speedup, res.AllocsRatio, res.MassRatio)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/storage"
)

// The -oocore mode measures the out-of-core snapshot streaming path: a
// session stepped from a chunked on-disk snapshot through FileSources
// with progressively tighter resident windows (all chunks, half, a
// quarter), against the inline baseline that stages the whole particle
// set in memory. Per-block outputs are verified byte-identical to the
// inline step before anything is timed; the source accounting (loads,
// evictions, peak resident chunks/particles) quantifies the staging
// memory the window trades against re-reads.

// oocoreWindow is one row of the window sweep.
type oocoreWindow struct {
	// WindowChunks is the resident-chunk bound (0 = unbounded).
	WindowChunks int             `json:"window_chunks"`
	Bench        insituBenchSide `json:"bench"`
	// Source accounting for exactly one step from a cold source.
	LoadsPerStep     int `json:"loads_per_step"`
	EvictionsPerStep int `json:"evictions_per_step"`
	PeakChunks       int `json:"peak_resident_chunks"`
	PeakParticles    int `json:"peak_resident_particles"`
	// StagingPeakBytes is the peak staged particle memory
	// (PeakParticles x 32 bytes on the wire-equivalent in-memory record).
	StagingPeakBytes int64 `json:"staging_peak_bytes"`
	// HeapAfterStep is runtime HeapAlloc after the verify step and a GC:
	// session working set plus the resident window.
	HeapAfterStep uint64 `json:"heap_after_step_bytes"`
}

// oocoreBenchResult is the BENCH_oocore.json document.
type oocoreBenchResult struct {
	Particles     int             `json:"particles"`
	Blocks        int             `json:"blocks"`
	Workers       int             `json:"workers"`
	Chunks        int             `json:"chunks"`
	SnapshotBytes int64           `json:"snapshot_bytes"`
	Inline        insituBenchSide `json:"inline"`
	Windows       []oocoreWindow  `json:"windows"`
}

func runOocoreBench(jsonPath string) {
	const (
		n       = 8000
		L       = 16.0
		blocks  = 4
		workers = 2
		chunks  = 16
	)
	// Clustered input: the interesting regime for out-of-core runs is a
	// halo-dominated snapshot, not a uniform lattice.
	ps := clusteredBenchParticles(n, L, 77)

	dir, err := os.MkdirTemp("", "oocore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "snap.bin")
	if err := storage.WriteSnapshot(path, ps, chunks); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}

	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	cfg := core.Config{
		Domain:    domain,
		Periodic:  true,
		GhostSize: ghostFor(domain, blocks),
		Workers:   workers,
	}

	// Inline baseline and the byte-identity gate's per-block reference.
	inlineSess, err := core.OpenSession(cfg, blocks)
	if err != nil {
		log.Fatal(err)
	}
	defer inlineSess.Close()
	ref, err := inlineSess.Step(ps)
	if err != nil {
		log.Fatal(err)
	}
	want := make([][]byte, len(ref.Meshes))
	for r, m := range ref.Meshes {
		if want[r], err = m.Encode(); err != nil {
			log.Fatal(err)
		}
	}
	inline := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inlineSess.Step(ps); err != nil {
				b.Fatal(err)
			}
		}
	})

	res := oocoreBenchResult{
		Particles:     n,
		Blocks:        blocks,
		Workers:       workers,
		Chunks:        chunks,
		SnapshotBytes: fi.Size(),
		Inline:        benchSide(inline),
	}

	for _, window := range []int{0, chunks / 2, chunks / 4} {
		src, err := storage.OpenFileSource(path, window)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := core.OpenSession(cfg, blocks)
		if err != nil {
			log.Fatal(err)
		}

		// One cold step: correctness gate plus the accounting snapshot.
		out, err := sess.StepSource(src, core.StepOpts{})
		if err != nil {
			log.Fatal(err)
		}
		for r, m := range out.Meshes {
			got, err := m.Encode()
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, want[r]) {
				log.Fatalf("window %d: block %d differs from the inline step", window, r)
			}
		}
		st := src.Stats()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)

		bench := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sess.StepSource(src, core.StepOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.Windows = append(res.Windows, oocoreWindow{
			WindowChunks:     window,
			Bench:            benchSide(bench),
			LoadsPerStep:     st.Loads,
			EvictionsPerStep: st.Evictions,
			PeakChunks:       st.PeakResidentChunks,
			PeakParticles:    st.PeakResidentParticles,
			StagingPeakBytes: int64(st.PeakResidentParticles) * 32,
			HeapAfterStep:    ms.HeapAlloc,
		})
		sess.Close()
		src.Close()
	}

	fmt.Println("OUT-OF-CORE STREAMING: inline slice vs windowed FileSource")
	fmt.Printf("%d clustered particles, %d blocks, %d workers/block, %d-chunk snapshot (%.1f KB)\n\n",
		n, blocks, workers, chunks, float64(res.SnapshotBytes)/1e3)
	fmt.Printf("%-10s %12s %14s %14s %7s %7s %10s %12s\n",
		"window", "ns/op", "allocs/op", "B/op", "loads", "evict", "peak part", "staged KB")
	fmt.Printf("%-10s %12d %14d %14d %7s %7s %10d %12.1f\n",
		"inline", res.Inline.NsPerOp, res.Inline.AllocsPerOp, res.Inline.BytesPerOp,
		"-", "-", n, float64(n)*32/1e3)
	for _, w := range res.Windows {
		name := "all"
		if w.WindowChunks > 0 {
			name = fmt.Sprintf("%d/%d", w.WindowChunks, chunks)
		}
		fmt.Printf("%-10s %12d %14d %14d %7d %7d %10d %12.1f\n",
			name, w.Bench.NsPerOp, w.Bench.AllocsPerOp, w.Bench.BytesPerOp,
			w.LoadsPerStep, w.EvictionsPerStep, w.PeakParticles,
			float64(w.StagingPeakBytes)/1e3)
	}
	fmt.Println("\nall windows verified byte-identical to the inline step before timing")

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/diy"
	"repro/internal/geom"
)

// The -balance mode measures what particle-balanced RCB decomposition buys
// over the equal-volume grid: slowest-rank compute time (the in situ wall
// time on one core per rank) on a uniform jittered lattice, where the grid
// is already near-optimal, and on a clustered halo mock, where equal-volume
// blocks give one rank most of the particles. Each case runs through
// core.RunTimed so ranks are timed one at a time.

// balanceCase is one (input, decomposition) measurement.
type balanceCase struct {
	Input          string  `json:"input"`  // "uniform" or "clustered"
	Decomp         string  `json:"decomp"` // "grid" or "rcb"
	ComputeMaxNs   int64   `json:"compute_max_ns"`
	ComputeMeanNs  int64   `json:"compute_mean_ns"`
	Imbalance      float64 `json:"imbalance"` // slowest rank / mean rank
	MaxBlockSites  int     `json:"max_block_sites"`
	MeanBlockSites int     `json:"mean_block_sites"`
}

// balanceBenchResult is the BENCH_balance.json document.
type balanceBenchResult struct {
	Particles       int           `json:"particles"`
	Blocks          int           `json:"blocks"`
	Repeats         int           `json:"repeats"`
	Cases           []balanceCase `json:"cases"`
	SpeedupUniform  float64       `json:"speedup_uniform"`   // grid max / rcb max
	SpeedupCluster  float64       `json:"speedup_clustered"` // grid max / rcb max
	ImbalanceGrid   float64       `json:"imbalance_grid_clustered"`
	ImbalanceRCB    float64       `json:"imbalance_rcb_clustered"`
	ClusterSpeedupB float64       `json:"speedup_clustered_bound"` // acceptance floor
}

// uniformParticles fills the box with a jittered lattice of side^3 sites —
// the quasi-uniform control where equal volume already means equal work.
func uniformParticles(side int, L float64, seed int64) []diy.Particle {
	rng := rand.New(rand.NewSource(seed))
	h := L / float64(side)
	ps := make([]diy.Particle, 0, side*side*side)
	id := int64(0)
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				ps = append(ps, diy.Particle{ID: id, Pos: geom.V(
					(float64(x)+0.5)*h+(rng.Float64()-0.5)*0.6*h,
					(float64(y)+0.5)*h+(rng.Float64()-0.5)*0.6*h,
					(float64(z)+0.5)*h+(rng.Float64()-0.5)*0.6*h,
				)})
				id++
			}
		}
	}
	return ps
}

// clusteredBenchParticles is the halo mock: most particles in a few tight
// Plummer spheres, the rest a thin background.
func clusteredBenchParticles(n int, L float64, seed int64) []diy.Particle {
	p := cosmo.DefaultClusterParams()
	p.Seed = seed
	pos := cosmo.ClusteredPositions(n, L, p)
	ps := make([]diy.Particle, len(pos))
	for i, q := range pos {
		ps[i] = diy.Particle{ID: int64(i), Pos: q}
	}
	return ps
}

// measureBalance runs RunTimed `repeats` times and keeps the fastest
// slowest-rank compute (min-of-max: the least scheduler-noisy estimate of
// the deterministic per-rank work).
func measureBalance(input, decomp string, cfg core.Config, ps []diy.Particle, blocks, repeats int) balanceCase {
	bc := balanceCase{Input: input, Decomp: decomp}
	for rep := 0; rep < repeats; rep++ {
		out, err := core.RunTimed(cfg, ps, blocks)
		if err != nil {
			log.Fatalf("balance %s/%s: %v", input, decomp, err)
		}
		maxC := out.Timing.Compute
		meanC := out.SumCompute / time.Duration(blocks)
		if bc.ComputeMaxNs == 0 || maxC.Nanoseconds() < bc.ComputeMaxNs {
			bc.ComputeMaxNs = maxC.Nanoseconds()
			bc.ComputeMeanNs = meanC.Nanoseconds()
			if meanC > 0 {
				bc.Imbalance = float64(maxC) / float64(meanC)
			}
		}
		if rep == 0 {
			d, err := decompFor(cfg, ps, blocks)
			if err != nil {
				log.Fatal(err)
			}
			parts := diy.PartitionParticles(d, ps)
			for _, p := range parts {
				if len(p) > bc.MaxBlockSites {
					bc.MaxBlockSites = len(p)
				}
				bc.MeanBlockSites += len(p)
			}
			bc.MeanBlockSites /= blocks
		}
	}
	return bc
}

// decompFor mirrors core's decomposition choice for site counting.
func decompFor(cfg core.Config, ps []diy.Particle, blocks int) (*diy.Decomposition, error) {
	if cfg.Decomposition == core.DecomposeRCB {
		return diy.DecomposeRCB(cfg.Domain, blocks, cfg.Periodic, ps, cfg.GhostSize)
	}
	return diy.Decompose(cfg.Domain, blocks, cfg.Periodic)
}

func runBalanceBench(jsonPath string) {
	const (
		side    = 20 // uniform lattice side: 8000 particles
		blocks  = 8
		L       = 20.0
		repeats = 3
		seed    = 1
	)
	n := side * side * side
	uniform := uniformParticles(side, L, seed)
	clustered := clusteredBenchParticles(n, L, seed)

	baseCfg := core.Config{
		Domain:    geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)),
		Periodic:  true,
		GhostSize: 2,
		Workers:   1, // one core per rank: imbalance shows as wall time
	}

	res := balanceBenchResult{
		Particles: n, Blocks: blocks, Repeats: repeats,
		ClusterSpeedupB: 1.3,
	}
	for _, in := range []struct {
		name string
		ps   []diy.Particle
	}{{"uniform", uniform}, {"clustered", clustered}} {
		for _, dec := range []struct {
			name string
			kind core.DecompKind
		}{{"grid", core.DecomposeRegular}, {"rcb", core.DecomposeRCB}} {
			cfg := baseCfg
			cfg.Decomposition = dec.kind
			res.Cases = append(res.Cases, measureBalance(in.name, dec.name, cfg, in.ps, blocks, repeats))
		}
	}

	find := func(input, decomp string) balanceCase {
		for _, c := range res.Cases {
			if c.Input == input && c.Decomp == decomp {
				return c
			}
		}
		log.Fatalf("missing case %s/%s", input, decomp)
		return balanceCase{}
	}
	ug, ur := find("uniform", "grid"), find("uniform", "rcb")
	cg, cr := find("clustered", "grid"), find("clustered", "rcb")
	if ur.ComputeMaxNs > 0 {
		res.SpeedupUniform = float64(ug.ComputeMaxNs) / float64(ur.ComputeMaxNs)
	}
	if cr.ComputeMaxNs > 0 {
		res.SpeedupCluster = float64(cg.ComputeMaxNs) / float64(cr.ComputeMaxNs)
	}
	res.ImbalanceGrid = cg.Imbalance
	res.ImbalanceRCB = cr.Imbalance

	fmt.Println("LOAD BALANCE: equal-volume grid vs particle-balanced RCB (slowest-rank compute)")
	fmt.Printf("%d particles, %d blocks, 1 worker/rank, min of %d repeats\n\n", n, blocks, repeats)
	fmt.Printf("%-10s %-6s %12s %12s %8s %10s\n", "input", "decomp", "max(ms)", "mean(ms)", "imbal", "max sites")
	for _, c := range res.Cases {
		fmt.Printf("%-10s %-6s %12.2f %12.2f %8.2f %10d\n",
			c.Input, c.Decomp, float64(c.ComputeMaxNs)/1e6, float64(c.ComputeMeanNs)/1e6,
			c.Imbalance, c.MaxBlockSites)
	}
	fmt.Printf("\nspeedup (grid max / rcb max): uniform %.2fx, clustered %.2fx (target >= %.1fx)\n",
		res.SpeedupUniform, res.SpeedupCluster, res.ClusterSpeedupB)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// Command tessbench regenerates the paper's performance evaluation: the
// Table II breakdown (simulation time, tessellation time split into
// exchange / Voronoi computation / output, output size) and the Figure 10
// strong- and weak-scaling series with their efficiencies.
//
// Problem sizes are scaled from the paper's Blue Gene/P runs (128^3-1024^3
// particles on 128-16384 processes) to laptop scale. Per-rank phase times
// are measured sequentially and reduced to the slowest rank, which is the
// wall time a machine with one core per rank would observe (see
// internal/core.RunTimed).
//
// Usage:
//
//	tessbench [-sizes 8,16,32] [-procs 1,2,4,8,16] [-steps 12] [-cull 0.1]
//	          [-workers N] [-scaling] [-datamodel] [-out DIR]
//	tessbench -faults [-seed N]
//	tessbench -insitu [-insitu-json FILE]
//	tessbench -balance [-balance-json FILE]
//	tessbench -density [-density-json FILE]
//	tessbench -oocore [-oocore-json FILE]
//
// The -insitu mode benchmarks the persistent-session API: the steady-state
// per-step cost of repeated tessellation through one Session (warm) against
// a fresh one-shot Run per step (cold), on evolving N-body snapshots.
//
// The -balance mode benchmarks the particle-balanced RCB decomposition
// against the equal-volume grid on uniform and clustered particle sets,
// reporting slowest-rank compute times and per-rank imbalance ratios.
//
// The -density mode benchmarks the streaming density pipeline (DTFE onto
// a sample grid plus power spectrum): cold one-shot Compute per snapshot
// against a warm Session.StepDensity, after verifying both produce
// byte-identical grids.
//
// The -oocore mode benchmarks out-of-core snapshot streaming: a session
// stepped from a chunked snapshot file through bounded resident windows
// (all, half, a quarter of the chunks) against the inline baseline, after
// verifying every window's per-block output is byte-identical to the
// inline step. The source accounting (loads, evictions, peak resident
// particles) quantifies the staging memory each window trades for
// re-reads.
//
// The -faults mode runs the graceful-degradation battery instead of the
// performance tables: seeded crash-at-step-N plans across 2- and 8-block
// decompositions must surface as structured rank errors (never a hang or
// a process exit), a stall must be diagnosed with a wait-for dump, and
// delay-only plans must leave the output byte-identical to a fault-free
// run. Exits non-zero if any case fails.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/nbody"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tessbench: ")
	var (
		sizes      = flag.String("sizes", "8,16,32", "comma-separated particles per dimension (powers of two)")
		procs      = flag.String("procs", "1,2,4,8,16", "comma-separated process (block) counts")
		steps      = flag.Int("steps", 25, "simulation steps before tessellating the largest size (smaller sizes run proportionally more: 25 at 32^3 gives the paper's 100/50/25 schedule)")
		cull       = flag.Float64("cull", 0.10, "cull the smallest fraction of the cell volume range (the paper's 10%)")
		scaling    = flag.Bool("scaling", false, "also print the Figure 10 strong/weak scaling series")
		commTable  = flag.Bool("comm", false, "also print the communication-volume table from the observability counters (runs an extra concurrent pass per row)")
		datamodel  = flag.Bool("datamodel", false, "also print the Sec. III-C2 data model statistics")
		outDir     = flag.String("out", "", "directory for tessellation output files (default: temp, deleted)")
		workers    = flag.Int("workers", 0, "intra-rank compute workers per block (0 = GOMAXPROCS; ranks are timed one at a time so each gets the whole machine)")
		faults     = flag.Bool("faults", false, "run the fault-injection battery instead of the performance tables")
		seed       = flag.Int64("seed", 1, "fault-injection seed for -faults (same seed, same schedule)")
		insitu     = flag.Bool("insitu", false, "benchmark cold (Run per step) vs warm (persistent Session) in situ stepping instead of the performance tables")
		insituOut  = flag.String("insitu-json", "", "write the -insitu comparison to this JSON file")
		balance    = flag.Bool("balance", false, "benchmark equal-volume grid vs particle-balanced RCB decomposition on uniform and clustered inputs instead of the performance tables")
		balanceOut = flag.String("balance-json", "", "write the -balance comparison to this JSON file")
		densityB   = flag.Bool("density", false, "benchmark cold (Compute per snapshot) vs warm (Session.StepDensity) density pipelines instead of the performance tables")
		densityOut = flag.String("density-json", "", "write the -density comparison to this JSON file")
		oocore     = flag.Bool("oocore", false, "benchmark inline stepping vs out-of-core streaming from a chunked snapshot file across resident-window sizes instead of the performance tables")
		oocoreOut  = flag.String("oocore-json", "", "write the -oocore comparison to this JSON file")
	)
	flag.Parse()

	if *faults {
		if !runFaultBattery(*seed) {
			os.Exit(1)
		}
		return
	}
	if *insitu {
		runInSituBench(*insituOut)
		return
	}
	if *balance {
		runBalanceBench(*balanceOut)
		return
	}
	if *densityB {
		runDensityBench(*densityOut)
		return
	}
	if *oocore {
		runOocoreBench(*oocoreOut)
		return
	}

	sizeList, err := parseInts(*sizes)
	if err != nil {
		log.Fatalf("bad -sizes: %v", err)
	}
	procList, err := parseInts(*procs)
	if err != nil {
		log.Fatalf("bad -procs: %v", err)
	}

	dir := *outDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "tessbench")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	fmt.Println("TABLE II: PERFORMANCE DATA (scaled reproduction)")
	fmt.Println("Simulation runs serially (the HACC stand-in is not block-decomposed);")
	fmt.Println("Sim/P is the ideal P-way split for the in situ cost comparison.")
	fmt.Println()
	fmt.Printf("%-10s %-6s %-6s %-4s %9s %9s %9s %9s %9s %9s %10s\n",
		"Particles", "Steps", "Procs", "Thr", "Sim(s)", "Sim/P(s)", "Tess(s)",
		"Exch(s)", "Voro(s)", "Out(s)", "Size(MB)")

	type strongPoint struct {
		procs int
		tess  time.Duration
	}
	strongSeries := map[int][]strongPoint{} // ng -> series
	var commRows []commRow

	largest := sizeList[len(sizeList)-1]
	for _, ng := range sizeList {
		// Smaller problems run more steps, mirroring the paper's
		// 100/50/25-step schedule across sizes.
		nsteps := *steps * largest / ng
		sim, simTime := runSim(ng, nsteps)
		particles := particlesOf(sim)

		// Derive the cull threshold from the volume range, once per size.
		minVol := cullThreshold(particles, float64(ng), *cull)

		for _, p := range procList {
			domain := geom.NewBox(geom.V(0, 0, 0), geom.V(float64(ng), float64(ng), float64(ng)))
			cfg := core.Config{
				Domain:     domain,
				Periodic:   true,
				GhostSize:  ghostFor(domain, p),
				HullPass:   true,
				MinVolume:  minVol,
				OutputPath: filepath.Join(dir, fmt.Sprintf("tess-%d-%d.out", ng, p)),
				Workers:    *workers,
			}
			out, err := core.RunTimed(cfg, particles, p)
			if err != nil {
				log.Fatalf("ng=%d procs=%d: %v", ng, p, err)
			}
			// RunTimed times ranks sequentially, so each rank's compute
			// phase uses EffectiveWorkers(cfg, 1) threads.
			fmt.Printf("%-10s %-6d %-6d %-4d %9.2f %9.2f %9.3f %9.3f %9.3f %9.3f %10.2f\n",
				fmt.Sprintf("%d^3", ng), nsteps, p, core.EffectiveWorkers(cfg, 1),
				simTime.Seconds(), simTime.Seconds()/float64(p),
				out.Timing.Total.Seconds(), out.Timing.Exchange.Seconds(),
				out.Timing.Compute.Seconds(), out.Timing.Output.Seconds(),
				float64(out.Timing.OutputBytes)/1e6)
			strongSeries[ng] = append(strongSeries[ng], strongPoint{procs: p, tess: out.Timing.Total})

			if *datamodel && p == procList[0] {
				printDataModel(out)
			}
			if *commTable {
				commRows = append(commRows, measureComm(ng, p, cfg, particles))
			}
		}
		fmt.Println()
	}

	if *commTable {
		printCommTable(commRows)
	}

	if *scaling {
		fmt.Println("FIGURE 10 (left): STRONG SCALING — tessellation time vs processes")
		fmt.Printf("%-10s %-6s %12s %12s\n", "Particles", "Procs", "Tess(s)", "Efficiency")
		for _, ng := range sizeList {
			series := strongSeries[ng]
			sort.Slice(series, func(i, j int) bool { return series[i].procs < series[j].procs })
			base := series[0]
			for _, pt := range series {
				eff := float64(base.procs) * base.tess.Seconds() /
					(float64(pt.procs) * pt.tess.Seconds())
				fmt.Printf("%-10s %-6d %12.4f %12.2f\n",
					fmt.Sprintf("%d^3", ng), pt.procs, pt.tess.Seconds(), eff)
			}
		}
		fmt.Println()
		weakScaling(dir, *cull, *workers)
	}
}

// commRow is one line of the communication-volume table, produced by an
// instrumented concurrent run. Unlike the phase timings, every field is a
// deterministic function of the inputs (message and byte counts do not
// depend on scheduling), so the table is reproducible bit-for-bit.
type commRow struct {
	ng, procs       int
	msgs, sentBytes int64
	maxPairBytes    int64
	ghosts          int64
	imbalance       float64
}

// measureComm reruns the tessellation through the concurrent driver with an
// obs.Recorder attached and reduces its snapshot to a table row.
func measureComm(ng, procs int, cfg core.Config, particles []diy.Particle) commRow {
	cfg.Recorder = obs.NewRecorder(procs)
	cfg.OutputPath = "" // measured separately; keep this pass I/O-free
	out, err := core.Run(cfg, particles, procs)
	if err != nil {
		log.Fatalf("comm pass ng=%d procs=%d: %v", ng, procs, err)
	}
	s := out.Obs
	row := commRow{
		ng: ng, procs: procs,
		msgs: s.TotalSentMsgs, sentBytes: s.TotalSentBytes,
		imbalance: s.ComputeImbalance,
	}
	for _, per := range s.SendBytes {
		for _, b := range per {
			if b > row.maxPairBytes {
				row.maxPairBytes = b
			}
		}
	}
	for _, g := range s.Counters[core.CounterGhosts] {
		row.ghosts += g
	}
	return row
}

func printCommTable(rows []commRow) {
	fmt.Println("COMMUNICATION VOLUME (obs counters; byte counts are deterministic)")
	fmt.Printf("%-10s %-6s %10s %10s %12s %10s %8s\n",
		"Particles", "Procs", "Msgs", "Sent(KB)", "MaxPair(KB)", "Ghosts", "Imbal")
	for _, r := range rows {
		fmt.Printf("%-10s %-6d %10d %10.1f %12.1f %10d %8.2f\n",
			fmt.Sprintf("%d^3", r.ng), r.procs, r.msgs,
			float64(r.sentBytes)/1e3, float64(r.maxPairBytes)/1e3,
			r.ghosts, r.imbalance)
	}
	fmt.Println()
}

// runSim evolves an ng^3 simulation for nsteps and returns it with the
// wall time.
func runSim(ng, nsteps int) (*nbody.Simulation, time.Duration) {
	cfg := nbody.DefaultConfig(ng)
	sim, err := nbody.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	sim.Run(nsteps, nil)
	return sim, time.Since(t0)
}

func particlesOf(sim *nbody.Simulation) []diy.Particle {
	out := make([]diy.Particle, len(sim.Pos))
	for i, p := range sim.Pos {
		out[i] = diy.Particle{ID: int64(i), Pos: p}
	}
	return out
}

// cullThreshold computes the volume cutting the smallest `frac` of the
// volume range, from an uncolled single-block pass.
func cullThreshold(particles []diy.Particle, L float64, frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	cfg := core.Config{
		Domain:    geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)),
		Periodic:  true,
		GhostSize: 4,
	}
	out, err := core.RunTimed(cfg, particles, 1)
	if err != nil {
		log.Fatalf("cull pre-pass: %v", err)
	}
	vols := out.Volumes()
	if len(vols) == 0 {
		return 0
	}
	lo, hi := vols[0], vols[0]
	for _, v := range vols {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo + frac*(hi-lo)
}

func printDataModel(out *core.TimedOutput) {
	var cells, faces, refs, verts int
	for _, m := range out.Meshes {
		s := m.ComputeStats()
		cells += s.Cells
		faces += s.Faces
		refs += s.FaceVertRefs
		verts += s.UniqueVerts
	}
	var geoB, connB int64
	for _, m := range out.Meshes {
		s := m.ComputeStats()
		geoB += s.GeometryBytes
		connB += s.ConnectivityBytes
	}
	fmt.Printf("  data model: %.1f faces/cell, %.1f verts/face, %.1f refs/vertex, "+
		"%.0f B/particle (%.0f%% geometry, %.0f%% connectivity)\n",
		float64(faces)/float64(cells), float64(refs)/float64(faces),
		float64(refs)/float64(verts),
		float64(geoB+connB)/float64(cells),
		100*float64(geoB)/float64(geoB+connB), 100*float64(connB)/float64(geoB+connB))
}

// weakScaling runs the Figure 10 (right) experiment: fixed particles per
// process across (8^3, 1), (16^3, 8), (32^3, 64).
func weakScaling(dir string, cull float64, workers int) {
	fmt.Println("FIGURE 10 (right): WEAK SCALING — tessellation time per particle")
	fmt.Printf("%-10s %-6s %16s %12s\n", "Particles", "Procs", "Tess/np(us)", "Efficiency")
	type wk struct {
		ng, procs int
	}
	series := []wk{{8, 1}, {16, 8}, {32, 64}}
	var base float64
	for i, s := range series {
		sim, _ := runSim(s.ng, 4)
		particles := particlesOf(sim)
		minVol := cullThreshold(particles, float64(s.ng), cull)
		domain := geom.NewBox(geom.V(0, 0, 0), geom.V(float64(s.ng), float64(s.ng), float64(s.ng)))
		cfg := core.Config{
			Domain:     domain,
			Periodic:   true,
			GhostSize:  ghostFor(domain, s.procs),
			HullPass:   true,
			MinVolume:  minVol,
			OutputPath: filepath.Join(dir, fmt.Sprintf("weak-%d.out", s.ng)),
			Workers:    workers,
		}
		out, err := core.RunTimed(cfg, particles, s.procs)
		if err != nil {
			log.Fatalf("weak ng=%d: %v", s.ng, err)
		}
		perParticle := out.Timing.Total.Seconds() / float64(len(particles)) * 1e6
		if i == 0 {
			base = perParticle
		}
		// Ideal weak scaling: per-particle time falls as 1/P when work per
		// rank is constant; efficiency relative to that ideal.
		ideal := base * float64(series[0].procs) / float64(s.procs)
		fmt.Printf("%-10s %-6d %16.3f %12.2f\n",
			fmt.Sprintf("%d^3", s.ng), s.procs, perParticle, ideal/perParticle)
	}
}

// ghostFor returns the usual ghost size of 4 units, clamped to the largest
// value the decomposition supports (thin blocks cannot host a wider ghost
// than their own side).
func ghostFor(domain geom.Box, blocks int) float64 {
	d, err := diy.Decompose(domain, blocks, true)
	if err != nil {
		log.Fatal(err)
	}
	g := core.MaxGhost(d)
	if g > 4 {
		g = 4
	}
	return g
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive value %d", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/nbody"
)

// The -insitu mode measures what the persistent-session API buys: the
// steady-state per-step cost of tessellating an evolving particle set,
// cold (one-shot core.Run per step, rebuilding the world, decomposition,
// and every buffer each time) versus warm (one core.Session stepped
// repeatedly, reusing all of it). Output bytes are identical on both
// paths; only the setup and allocation behavior differs.

// insituBenchSide is one side of the cold/warm comparison.
type insituBenchSide struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	SecPerOp    float64 `json:"sec_per_op"`
}

// insituBenchResult is the BENCH_insitu.json document.
type insituBenchResult struct {
	Ng          int             `json:"ng"`
	Particles   int             `json:"particles"`
	Blocks      int             `json:"blocks"`
	Workers     int             `json:"workers"`
	Snapshots   int             `json:"snapshots"`
	Cold        insituBenchSide `json:"cold"`
	Warm        insituBenchSide `json:"warm"`
	Speedup     float64         `json:"speedup"`      // cold ns / warm ns
	AllocsRatio float64         `json:"allocs_ratio"` // cold allocs / warm allocs
}

func benchSide(r testing.BenchmarkResult) insituBenchSide {
	return insituBenchSide{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
		SecPerOp:    float64(r.NsPerOp()) / 1e9,
	}
}

// benchSnapshots evolves an ng^3 simulation and captures `count`
// consecutive particle snapshots — genuinely evolving inputs so the warm
// path's structural reuse is measured on moving particles, not a frozen
// set.
func benchSnapshots(ng, count int) [][]diy.Particle {
	sim, err := nbody.New(nbody.DefaultConfig(ng))
	if err != nil {
		log.Fatal(err)
	}
	var snaps [][]diy.Particle
	sim.Run(count, func(s *nbody.Simulation) {
		snaps = append(snaps, particlesOf(s))
	})
	return snaps
}

func runInSituBench(jsonPath string) {
	const (
		ng      = 16
		blocks  = 4
		workers = 2
		nsnaps  = 6
	)
	snaps := benchSnapshots(ng, nsnaps)
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(ng, ng, ng))
	cfg := core.Config{
		Domain:    domain,
		Periodic:  true,
		GhostSize: ghostFor(domain, blocks),
		Workers:   workers,
	}

	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(cfg, snaps[i%len(snaps)], blocks); err != nil {
				b.Fatal(err)
			}
		}
	})

	sess, err := core.OpenSession(cfg, blocks)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	// Prime the session so the measured loop is pure steady state.
	if _, err := sess.Step(snaps[0]); err != nil {
		log.Fatal(err)
	}
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Step(snaps[i%len(snaps)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	res := insituBenchResult{
		Ng:        ng,
		Particles: ng * ng * ng,
		Blocks:    blocks,
		Workers:   workers,
		Snapshots: nsnaps,
		Cold:      benchSide(cold),
		Warm:      benchSide(warm),
	}
	if res.Warm.NsPerOp > 0 {
		res.Speedup = float64(res.Cold.NsPerOp) / float64(res.Warm.NsPerOp)
	}
	if res.Warm.AllocsPerOp > 0 {
		res.AllocsRatio = float64(res.Cold.AllocsPerOp) / float64(res.Warm.AllocsPerOp)
	}

	fmt.Println("IN SITU SESSION: cold (Run per step) vs warm (Session.Step)")
	fmt.Printf("%d^3 particles, %d blocks, %d workers/block, %d evolving snapshots\n\n",
		ng, blocks, workers, nsnaps)
	fmt.Printf("%-6s %12s %14s %14s\n", "", "ns/op", "allocs/op", "B/op")
	fmt.Printf("%-6s %12d %14d %14d\n", "cold", res.Cold.NsPerOp, res.Cold.AllocsPerOp, res.Cold.BytesPerOp)
	fmt.Printf("%-6s %12d %14d %14d\n", "warm", res.Warm.NsPerOp, res.Warm.AllocsPerOp, res.Warm.BytesPerOp)
	fmt.Printf("\nspeedup %.2fx, allocs ratio %.1fx\n", res.Speedup, res.AllocsRatio)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// Command tessctl is the scriptable client of the tessd daemon: submit
// JSON job specs, watch their NDJSON event streams, fetch statuses, and
// cancel jobs, all against the daemon's HTTP API.
//
// Usage:
//
//	tessctl [-addr http://127.0.0.1:8437] <command> [args]
//
//	tessctl submit [-f spec.json] [-wait] [-mesh-dir DIR]
//	    Submit a job spec (from -f, or stdin with -f - or no flag).
//	    -wait streams events until the job finishes and exits non-zero
//	    on failure; -mesh-dir writes each step's merged canonical mesh to
//	    DIR/<job>-step<N>.mesh.
//	tessctl status <job-id>
//	tessctl list
//	tessctl cancel <job-id>
//	tessctl resume <job-id>
//	    Resubmit a failed or canceled job as a fresh job; a job whose
//	    spec set checkpoint_dir continues from its committed checkpoint
//	    instead of starting over. Prints the new job's status.
//	tessctl watch [-from N] <job-id>
//	    Stream a job's events as NDJSON to stdout (resumable via -from).
//	tessctl density [-step N] [-z K] [-o FILE] <job-id>
//	    Fetch a density-job step's sample grid (raw little-endian
//	    float64) — the whole N^3 grid, or one z-plane with -z. Writes to
//	    -o, or stdout when -o is "-".
//	tessctl stats
//
// Exit status: 0 on success; 1 on API or usage errors; 2 when -wait saw
// the job end in failure or cancellation.
package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/jobd"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8437", "daemon base URL")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tessctl [-addr URL] {submit|status|list|cancel|resume|watch|density|stats} [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(1)
	}
	c := &jobd.Client{Base: *addr}
	ctx := context.Background()
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "submit":
		err = runSubmit(ctx, c, flag.Args()[1:])
	case "status":
		err = runJSON1(ctx, flag.Args()[1:], func(id string) (any, error) { return c.Status(ctx, id) })
	case "cancel":
		err = runJSON1(ctx, flag.Args()[1:], func(id string) (any, error) { return c.Cancel(ctx, id) })
	case "resume":
		err = runJSON1(ctx, flag.Args()[1:], func(id string) (any, error) { return c.Resume(ctx, id) })
	case "list":
		err = printJSON(c.List(ctx))
	case "stats":
		err = printJSON(c.Stats(ctx))
	case "watch":
		err = runWatch(ctx, c, flag.Args()[1:])
	case "density":
		err = runDensity(ctx, c, flag.Args()[1:])
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tessctl: %v\n", err)
		if err == errJobFailed {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

var errJobFailed = fmt.Errorf("job did not complete")

// printJSON writes v (already paired with its fetch error) as indented
// JSON on stdout.
func printJSON[T any](v T, err error) error {
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// runJSON1 runs a one-ID-argument command and prints its JSON result.
func runJSON1(ctx context.Context, args []string, f func(id string) (any, error)) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one job ID argument")
	}
	return printJSON(f(args[0]))
}

func runSubmit(ctx context.Context, c *jobd.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	file := fs.String("f", "-", "job spec file (\"-\" = stdin)")
	wait := fs.Bool("wait", false, "stream events until the job finishes")
	meshDir := fs.String("mesh-dir", "", "write each step's canonical mesh to this directory (implies -wait)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var rd io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	var spec jobd.JobSpec
	if err := json.NewDecoder(rd).Decode(&spec); err != nil {
		return fmt.Errorf("decode spec: %w", err)
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if !*wait && *meshDir == "" {
		return printJSON(st, nil)
	}
	fmt.Fprintf(os.Stderr, "tessctl: submitted %s\n", st.ID)
	enc := json.NewEncoder(os.Stdout)
	var terminal jobd.Event
	err = c.Events(ctx, st.ID, 0, func(e jobd.Event) error {
		if terminalEvent(e) {
			terminal = e
		}
		if *meshDir != "" && e.Type == "step" && e.MeshB64 != "" {
			raw, err := base64.StdEncoding.DecodeString(e.MeshB64)
			if err != nil {
				return fmt.Errorf("step %d mesh: %w", e.Step, err)
			}
			path := filepath.Join(*meshDir, fmt.Sprintf("%s-step%d.mesh", e.Job, e.Step))
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				return err
			}
			e.MeshB64 = fmt.Sprintf("(written to %s)", path)
		}
		return enc.Encode(e)
	})
	if err != nil {
		return err
	}
	if terminal.Type != "done" {
		return errJobFailed
	}
	return nil
}

func runWatch(ctx context.Context, c *jobd.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	from := fs.Int("from", 0, "resume from this event sequence number")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one job ID argument")
	}
	enc := json.NewEncoder(os.Stdout)
	return c.Events(ctx, fs.Arg(0), *from, func(e jobd.Event) error { return enc.Encode(e) })
}

// runDensity fetches one step's density grid (or z-plane) from the
// daemon's slice endpoint.
func runDensity(ctx context.Context, c *jobd.Client, args []string) error {
	fs := flag.NewFlagSet("density", flag.ExitOnError)
	step := fs.Int("step", 1, "1-based step number")
	z := fs.Int("z", -1, "fetch only this z-plane (-1 = whole grid)")
	out := fs.String("o", "-", "output file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one job ID argument")
	}
	var (
		grid []byte
		n    int
		err  error
	)
	if *z >= 0 {
		grid, n, err = c.DensitySlice(ctx, fs.Arg(0), *step, *z)
	} else {
		grid, n, err = c.DensityGrid(ctx, fs.Arg(0), *step)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tessctl: step %d grid %d^3, %d bytes\n", *step, n, len(grid))
	if *out == "-" {
		_, err = os.Stdout.Write(grid)
		return err
	}
	return os.WriteFile(*out, grid, 0o644)
}

func terminalEvent(e jobd.Event) bool {
	return e.Type == "done" || e.Type == "error" || e.Type == "canceled"
}

// Command tessd is the multi-tenant tessellation daemon: a long-running
// HTTP service that accepts JSON job specs, queues them with admission
// control (429 + Retry-After when compute is saturated), and multiplexes
// many concurrent tessellation sessions over one shared worker budget.
// One tenant's crash — injected or genuine — surfaces as a structured
// error event on that job's stream and never disturbs sibling jobs.
//
// Usage:
//
//	tessd [-addr :8437] [-queue 16] [-active 2] [-budget 0]
//	      [-stall 30s] [-max-blocks 64] [-max-steps 1024]
//	      [-max-particles 1000000] [-max-grid 128]
//
// Submit and watch jobs with the tessctl client (cmd/tessctl), or plain
// curl:
//
//	curl -s localhost:8437/v1/jobs -d '{"l":8,"blocks":2,"sim":{"ng":8,"steps":3},"include_mesh":true}'
//	curl -N localhost:8437/v1/jobs/j0001/events
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobd"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	queue := flag.Int("queue", 16, "admission queue capacity (jobs waiting to start)")
	active := flag.Int("active", 2, "max concurrently running jobs (scheduler workers)")
	budget := flag.Int("budget", 0, "total compute workers shared by all jobs (0 = GOMAXPROCS)")
	stall := flag.Duration("stall", 30*time.Second, "per-session stall watchdog timeout (negative disables)")
	maxBlocks := flag.Int("max-blocks", 64, "max blocks per job (0 = unlimited)")
	maxSteps := flag.Int("max-steps", 1024, "max steps per job (0 = unlimited)")
	maxParticles := flag.Int("max-particles", 1_000_000, "max particles per snapshot (0 = unlimited)")
	maxGrid := flag.Int("max-grid", 128, "max density sample-grid resolution per axis (0 = unlimited)")
	flag.Parse()

	d := jobd.New(jobd.Config{
		QueueCapacity: *queue,
		MaxActive:     *active,
		WorkerBudget:  *budget,
		StallTimeout:  *stall,
		Limits: jobd.Limits{
			MaxBlocks:    *maxBlocks,
			MaxSteps:     *maxSteps,
			MaxParticles: *maxParticles,
			MaxGridN:     *maxGrid,
		},
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tessd: listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: d.Handler()}
	log.Printf("tessd: serving on %s (queue %d, active %d, budget %d)",
		lis.Addr(), *queue, *active, d.Budget().Total())

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("tessd: %v — draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "tessd: shutdown: %v\n", err)
		}
		d.Close()
	}()
	if err := srv.Serve(lis); err != nil && err != http.ErrServerClosed {
		log.Fatalf("tessd: serve: %v", err)
	}
	<-done
}

# Build / verification entry points. `make check` is the full gate: vet,
# the repo's own static analyzers (cmd/tesslint), and the whole test suite
# under the race detector, so both the intra-rank worker-pool concurrency
# and the rank-isolation/determinism/hot-path invariants are checked on
# every run.

GO ?= go

.PHONY: build test vet lint race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/tesslint ./...

race:
	$(GO) test -race ./...

check: vet lint race

# Headline perf benches: worker-pool scaling and allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'ComputeParallelism|ComputeCellAllocs' -benchmem -benchtime 2x .

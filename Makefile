# Build / verification entry points. `make check` is the full gate: vet
# plus the whole test suite under the race detector, so the intra-rank
# worker-pool concurrency is race-checked on every run.

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

# Headline perf benches: worker-pool scaling and allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'ComputeParallelism|ComputeCellAllocs' -benchmem -benchtime 2x .

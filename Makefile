# Build / verification entry points. `make check` is the full gate: vet,
# the repo's own static analyzers (cmd/tesslint), the whole test suite
# under the race detector, the coverage floor, and the fault-injection
# battery, so the intra-rank worker-pool concurrency, the
# rank-isolation/determinism/hot-path invariants, AND the failure model
# (abort, watchdog, crash containment) are checked on every run.

GO ?= go

# Hang guard: the fault-containment layer turns deadlocks into errors, so
# any test that still hangs is itself a containment bug — bound it rather
# than letting CI sit for the default 10 minutes.
TEST_TIMEOUT ?= 4m

.PHONY: build test vet lint race cover faults ckpt jobd-e2e check bench bench-insitu bench-balance bench-density bench-oocore

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/tesslint ./...

race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./...

# Coverage floor on the observability-critical packages: the recorder
# itself, the comm layer that feeds its counters, the ghost exchange
# whose conservation laws the counters are tested against, the
# multi-tenant daemon whose admission/cancel/containment paths the e2e
# suite drives, the density pipeline whose byte-identity and
# mass-conservation oracles gate the density job kind, and the storage
# layer (snapshot sources + checkpoint commit protocol) the
# out-of-core/resume paths stand on.
COVER_PKGS  = ./internal/obs ./internal/comm ./internal/diy ./internal/jobd ./internal/density ./internal/storage
COVER_FLOOR = 70

cover:
	@fail=0; \
	for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover $$pkg | tail -n 1); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage reported for $$pkg"; fail=1; continue; fi; \
		if ! awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p >= f) }'; then \
			echo "FAIL: $$pkg coverage $$pct% is below the $(COVER_FLOOR)% floor"; fail=1; \
		fi; \
	done; \
	exit $$fail

# Graceful-degradation battery: seeded crashes, a diagnosed stall, and
# delay transparency, through the real drivers (see cmd/tessbench -faults).
faults:
	$(GO) run ./cmd/tessbench -faults

# Daemon end-to-end suite: boots tessd in process on a loopback listener
# and drives it through the real HTTP surface (byte-identity with direct
# sessions, 429 admission control, cancel mid-step, crash-tenant
# isolation), under the race detector.
jobd-e2e:
	$(GO) test -race -timeout $(TEST_TIMEOUT) -run 'TestE2E' ./internal/jobd/...

# Checkpoint/restart acceptance: crash-at-step-N byte-identical resume
# across block and worker counts, plus the out-of-core FileSource
# identity gate, under the race detector.
ckpt:
	$(GO) test -race -timeout $(TEST_TIMEOUT) -run 'CrashResume|CheckpointResume|ResumeValidation|StepFromFileSource' .

check: vet lint race cover faults ckpt jobd-e2e

# Headline perf benches: worker-pool scaling and allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'ComputeParallelism|ComputeCellAllocs' -benchmem -benchtime 2x .

# Persistent-session benchmark: cold (Run per step) vs warm (Session.Step)
# on evolving N-body snapshots; writes BENCH_insitu.json.
bench-insitu:
	$(GO) run ./cmd/tessbench -insitu -insitu-json BENCH_insitu.json

# Load-balance benchmark: equal-volume grid vs particle-balanced RCB on
# uniform and clustered inputs; writes BENCH_balance.json.
bench-balance:
	$(GO) run ./cmd/tessbench -balance -balance-json BENCH_balance.json

# Density-pipeline benchmark: cold (Compute per snapshot) vs warm
# (Session.StepDensity), byte-identity verified before timing; writes
# BENCH_density.json.
bench-density:
	$(GO) run ./cmd/tessbench -density -density-json BENCH_density.json

# Out-of-core streaming benchmark: inline stepping vs windowed FileSource
# streaming (all/half/quarter resident windows), byte-identity verified
# before timing; writes BENCH_oocore.json.
bench-oocore:
	$(GO) run ./cmd/tessbench -oocore -oocore-json BENCH_oocore.json

package tess

import (
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/nbody"
)

func testParticles(seed int64, n int, L float64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	h := L / float64(n)
	var pos []Vec3
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pos = append(pos, geom.V(
					(float64(x)+0.5)*h+(rng.Float64()-0.5)*0.9*h,
					(float64(y)+0.5)*h+(rng.Float64()-0.5)*0.9*h,
					(float64(z)+0.5)*h+(rng.Float64()-0.5)*0.9*h))
			}
		}
	}
	return ParticlesFromPositions(pos)
}

func TestTessellatePublicAPI(t *testing.T) {
	ps := testParticles(96, 8, 8)
	cfg := NewPeriodicConfig(8)
	cfg.GhostSize = 3
	out, err := Tessellate(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Counts.Kept != int64(len(ps)) {
		t.Fatalf("kept %d of %d", out.Counts.Kept, len(ps))
	}
	var vol float64
	for _, v := range out.Volumes() {
		vol += v
	}
	if math.Abs(vol-512) > 1e-6*512 {
		t.Errorf("total volume %v, want 512", vol)
	}
}

func TestNewBoundedConfig(t *testing.T) {
	// Bounded mode: interior cells survive, boundary cells are incomplete.
	ps := testParticles(97, 8, 8)
	cfg := NewBoundedConfig(geom.NewBox(geom.V(0, 0, 0), geom.V(8, 8, 8)))
	cfg.GhostSize = 3
	out, err := Tessellate(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Counts.Incomplete == 0 {
		t.Error("bounded run should have incomplete boundary cells")
	}
	if out.Counts.Kept == 0 {
		t.Error("bounded run kept nothing")
	}
	if out.Counts.Kept+out.Counts.Incomplete != int64(len(ps)) {
		t.Errorf("counts: %+v", out.Counts)
	}
}

func TestParticlesFromPositions(t *testing.T) {
	pos := []Vec3{{X: 1}, {Y: 2}}
	ps := ParticlesFromPositions(pos)
	if len(ps) != 2 || ps[0].ID != 0 || ps[1].ID != 1 || ps[1].Pos.Y != 2 {
		t.Errorf("ps = %+v", ps)
	}
}

func TestRunInSituValidation(t *testing.T) {
	base := InSituConfig{Sim: nbody.DefaultConfig(8), Tess: NewPeriodicConfig(8), Steps: 1, Blocks: 1}
	bad := base
	bad.Steps = 0
	if _, err := RunInSitu(bad, nil); err == nil {
		t.Error("zero steps accepted")
	}
	bad = base
	bad.Blocks = 0
	if _, err := RunInSitu(bad, nil); err == nil {
		t.Error("zero blocks accepted")
	}
	bad = base
	bad.Tess = NewPeriodicConfig(16)
	if _, err := RunInSitu(bad, nil); err == nil {
		t.Error("mismatched domain accepted")
	}
}

func TestRunInSituSnapshots(t *testing.T) {
	cfg := InSituConfig{
		Sim:    nbody.DefaultConfig(8),
		Tess:   NewPeriodicConfig(8),
		Steps:  10,
		Every:  5,
		Blocks: 2,
	}
	cfg.Tess.GhostSize = 3
	var hooked []int
	snaps, err := RunInSitu(cfg, func(s Snapshot) error { hooked = append(hooked, s.Step); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2 (steps 5 and 10)", len(snaps))
	}
	if snaps[0].Step != 5 || snaps[1].Step != 10 {
		t.Errorf("snapshot steps: %d, %d", snaps[0].Step, snaps[1].Step)
	}
	if len(hooked) != 2 {
		t.Errorf("hook ran %d times", len(hooked))
	}
	for _, s := range snaps {
		if s.Output.Counts.Kept != 512 {
			t.Errorf("step %d kept %d cells", s.Step, s.Output.Counts.Kept)
		}
		if s.TessTime <= 0 {
			t.Error("tess time not recorded")
		}
	}
}

func TestRunInSituFinalStepAlways(t *testing.T) {
	cfg := InSituConfig{
		Sim:    nbody.DefaultConfig(8),
		Tess:   NewPeriodicConfig(8),
		Steps:  7,
		Every:  3,
		Blocks: 1,
	}
	cfg.Tess.GhostSize = 3
	snaps, err := RunInSitu(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Steps 3, 6, and the final 7.
	if len(snaps) != 3 || snaps[2].Step != 7 {
		steps := make([]int, len(snaps))
		for i, s := range snaps {
			steps[i] = s.Step
		}
		t.Fatalf("snapshot steps = %v, want [3 6 7]", steps)
	}
}

func TestInSituOutputAndVoidPipeline(t *testing.T) {
	// End to end: simulate, tessellate in situ to disk, read back, find
	// voids.
	dir := t.TempDir()
	cfg := InSituConfig{
		Sim:       nbody.DefaultConfig(8),
		Tess:      NewPeriodicConfig(8),
		Steps:     6,
		Every:     0, // final step only
		Blocks:    2,
		OutputDir: dir,
	}
	cfg.Tess.GhostSize = 3
	snaps, err := RunInSitu(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	path := filepath.Join(dir, "tess-step-0006.out")
	recs, err := ReadTessFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 512 {
		t.Fatalf("records = %d", len(recs))
	}
	vols := make([]float64, len(recs))
	for i, r := range recs {
		vols[i] = r.Volume
	}
	// Find voids above the mean volume.
	var mean float64
	for _, v := range vols {
		mean += v
	}
	mean /= float64(len(vols))
	comps := FindVoids(recs, mean)
	if len(comps) == 0 {
		t.Fatal("no voids found")
	}
	if comps[0].Functionals.Volume <= 0 {
		t.Error("void with nonpositive volume")
	}
}

func TestAutoTessellateFacade(t *testing.T) {
	ps := testParticles(118, 8, 8)
	cfg := NewPeriodicConfig(8)
	cfg.GhostSize = 0 // force estimation
	out, ghost, err := AutoTessellate(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ghost <= 0 {
		t.Errorf("ghost = %v", ghost)
	}
	if out.Counts.Incomplete != 0 || out.Counts.Kept != int64(len(ps)) {
		t.Errorf("counts: %+v", out.Counts)
	}
}

func TestEstimateAndMaxGhostFacade(t *testing.T) {
	cfg := NewPeriodicConfig(8)
	g, err := EstimateGhost(cfg, 512, 1, 0)
	if err != nil || math.Abs(g-4) > 1e-9 {
		t.Errorf("EstimateGhost = %v, %v", g, err)
	}
	m, err := MaxGhostFor(cfg, 8)
	if err != nil || math.Abs(m-4) > 1e-9 {
		t.Errorf("MaxGhostFor = %v, %v", m, err)
	}
}

func TestFrameworkFacade(t *testing.T) {
	cfg, err := ParseToolsConfig(strings.NewReader("[halo]\nevery = 3\nmin_members = 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	simCfg := NewSimConfig(8)
	p, err := NewPipeline(cfg, simCfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(simCfg, 3); err != nil {
		t.Fatal(err)
	}
	if len(p.Results) != 1 {
		t.Errorf("results = %d", len(p.Results))
	}
	if len(KnownAnalyses()) < 5 {
		t.Errorf("known analyses: %v", KnownAnalyses())
	}
	srv := NewLiveServer()
	srv.Publish(AnalysisResult{Analysis: "halo", Step: 3})
	if srv == nil {
		t.Fatal("nil server")
	}
}

func TestTessellateWithInSituVoidLabels(t *testing.T) {
	ps := testParticles(119, 8, 8)
	cfg := NewPeriodicConfig(8)
	cfg.GhostSize = 3
	cfg.LabelVoids = true
	out, err := Tessellate(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Voids) == 0 {
		t.Error("no in situ void labels")
	}
}

package tess_test

import (
	"fmt"
	"math/rand"
	"strings"

	tess "repro"
)

// gridPoints builds a deterministic, slightly perturbed lattice so the
// examples have stable output.
func gridPoints(n int, L float64) []tess.Vec3 {
	rng := rand.New(rand.NewSource(1))
	h := L / float64(n)
	var pos []tess.Vec3
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pos = append(pos, tess.Vec3{
					X: (float64(x)+0.5)*h + (rng.Float64()-0.5)*0.5*h,
					Y: (float64(y)+0.5)*h + (rng.Float64()-0.5)*0.5*h,
					Z: (float64(z)+0.5)*h + (rng.Float64()-0.5)*0.5*h,
				})
			}
		}
	}
	return pos
}

// ExampleTessellate computes a periodic parallel Voronoi tessellation.
func ExampleTessellate() {
	particles := tess.ParticlesFromPositions(gridPoints(6, 6))
	cfg := tess.NewPeriodicConfig(6)
	cfg.GhostSize = 3
	out, err := tess.Tessellate(cfg, particles, 4)
	if err != nil {
		panic(err)
	}
	var total float64
	for _, v := range out.Volumes() {
		total += v
	}
	fmt.Printf("cells: %d\n", out.Counts.Kept)
	fmt.Printf("volumes sum to box volume: %.1f\n", total)
	// Output:
	// cells: 216
	// volumes sum to box volume: 216.0
}

// ExampleAutoTessellate lets the library pick and, if needed, grow the
// ghost size until every cell is proven correct.
func ExampleAutoTessellate() {
	particles := tess.ParticlesFromPositions(gridPoints(6, 6))
	cfg := tess.NewPeriodicConfig(6)
	cfg.GhostSize = 0 // request automatic determination
	out, ghost, err := tess.AutoTessellate(cfg, particles, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ghost size used: %.0f\n", ghost)
	fmt.Printf("incomplete cells: %d\n", out.Counts.Incomplete)
	// Output:
	// ghost size used: 3
	// incomplete cells: 0
}

// ExampleFindVoids runs the threshold + connected-components void finder
// on tessellation output.
func ExampleFindVoids() {
	particles := tess.ParticlesFromPositions(gridPoints(6, 6))
	cfg := tess.NewPeriodicConfig(6)
	cfg.GhostSize = 3
	cfg.LabelVoids = true // label components in situ
	out, err := tess.Tessellate(cfg, particles, 4)
	if err != nil {
		panic(err)
	}
	// In situ labels and the postprocessing path agree.
	fmt.Printf("in situ components computed: %v\n", len(out.Voids) > 0)
	// Output:
	// in situ components computed: true
}

// ExampleParseToolsConfig builds the in situ analysis pipeline from a
// configuration deck.
func ExampleParseToolsConfig() {
	deck := `
[halo]
every = 10
linking_length = 0.2

[powerspec]
every = 20
`
	cfg, err := tess.ParseToolsConfig(strings.NewReader(deck))
	if err != nil {
		panic(err)
	}
	pipeline, err := tess.NewPipeline(cfg, tess.NewSimConfig(8), "")
	if err != nil {
		panic(err)
	}
	fmt.Printf("analyses enabled: %d\n", len(pipeline.Analyses))
	fmt.Printf("known tools: %v\n", tess.KnownAnalyses())
	// Output:
	// analyses enabled: 2
	// known tools: [correlation halo multistream powerspec tess voids]
}

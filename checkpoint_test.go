package tess

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// canonicalBytes reduces a step's output to the decomposition-independent
// oracle: the canonical merged mesh's encoding.
func canonicalBytes(t *testing.T, out *Output, cfg Config) []byte {
	t.Helper()
	m, err := MergeCanonical(out.Meshes, cfg.Domain, cfg.Periodic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrashResumeByteIdentity is the checkpoint/restart acceptance
// gate: a session auto-checkpointing every step is crashed by fault
// injection at step 3's compute phase, resumed from the on-disk
// checkpoint, and driven to the end — and every post-resume step's
// canonical merged mesh is byte-identical to the uninterrupted
// baseline's, across block and worker counts.
func TestCrashResumeByteIdentity(t *testing.T) {
	const steps = 4
	const crashAt = 3
	for _, blocks := range []int{2, 8} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("blocks=%d/workers=%d", blocks, workers), func(t *testing.T) {
				cfg := NewPeriodicConfig(8, WithGhostSize(3), WithWorkers(workers))

				// Uninterrupted baseline.
				base, err := Open(cfg, blocks)
				if err != nil {
					t.Fatal(err)
				}
				defer base.Close()
				want := make([][]byte, steps+1)
				for s := 1; s <= steps; s++ {
					out, err := base.Step(testParticles(300+int64(s), 8, 8))
					if err != nil {
						t.Fatal(err)
					}
					want[s] = canonicalBytes(t, out, cfg)
				}

				// Checkpointing run, crashed at step crashAt. Fault
				// checkpoints accumulate 4 per session step; "compute" is
				// the 2nd checkpoint of a step.
				dir := filepath.Join(t.TempDir(), "ck")
				crashCfg := cfg
				crashCfg.CheckpointDir = dir
				crashCfg.StallTimeout = 10 * time.Second
				crashCfg.Faults = &FaultPlan{Seed: 5, CrashRank: 0, CrashStep: (crashAt-1)*4 + 2}
				victim, err := Open(crashCfg, blocks)
				if err != nil {
					t.Fatal(err)
				}
				defer victim.Close()
				for s := 1; s < crashAt; s++ {
					if _, err := victim.Step(testParticles(300+int64(s), 8, 8), WithCheckpointEvery(1)); err != nil {
						t.Fatalf("pre-crash step %d: %v", s, err)
					}
				}
				if _, err := victim.Step(testParticles(300+crashAt, 8, 8), WithCheckpointEvery(1)); err == nil {
					t.Fatal("step survived the injected crash")
				}
				if !HasCheckpoint(dir) {
					t.Fatal("no committed checkpoint after the crash")
				}

				// Resume and replay the remaining steps (fresh config, no
				// fault plan — the operator restarting the host process).
				resumeCfg := cfg
				resumeCfg.CheckpointDir = dir
				res, err := Resume(resumeCfg, dir)
				if err != nil {
					t.Fatal(err)
				}
				defer res.Close()
				if res.Steps() != crashAt-1 {
					t.Fatalf("resumed at step %d, want %d", res.Steps(), crashAt-1)
				}
				for s := crashAt; s <= steps; s++ {
					out, err := res.Step(testParticles(300+int64(s), 8, 8), WithCheckpointEvery(1))
					if err != nil {
						t.Fatalf("post-resume step %d: %v", s, err)
					}
					if got := canonicalBytes(t, out, cfg); !bytes.Equal(got, want[s]) {
						t.Fatalf("step %d canonical mesh differs after resume", s)
					}
				}
				if res.Steps() != steps {
					t.Errorf("Steps() = %d after replay, want %d", res.Steps(), steps)
				}
			})
		}
	}
}

// TestExplicitCheckpointResume covers the manual Checkpoint call (no
// fault injection, no auto-checkpoint): warm/cold counters and the step
// count survive the round trip.
func TestExplicitCheckpointResume(t *testing.T) {
	cfg := NewPeriodicConfig(8, WithGhostSize(3))
	sess, err := Open(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	dir := filepath.Join(t.TempDir(), "ck")
	if err := sess.Checkpoint(dir); err == nil {
		t.Fatal("checkpoint before the first step accepted")
	}
	for s := 1; s <= 2; s++ {
		if _, err := sess.Step(testParticles(400+int64(s), 8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	warm, cold := sess.WarmStats()

	res, err := Resume(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Steps() != 2 {
		t.Fatalf("resumed Steps() = %d, want 2", res.Steps())
	}
	if w, c := res.WarmStats(); w != warm || c != cold {
		t.Errorf("warm/cold %d/%d after resume, want %d/%d", w, c, warm, cold)
	}
	out, err := res.Step(testParticles(403, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Step(testParticles(403, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonicalBytes(t, out, cfg), canonicalBytes(t, want, cfg)) {
		t.Error("step 3 diverges between resumed and original session")
	}
}

// TestResumeValidation: a checkpoint must not silently resume under a
// config that would have produced different output.
func TestResumeValidation(t *testing.T) {
	cfg := NewPeriodicConfig(8, WithGhostSize(3))
	sess, err := Open(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(testParticles(420, 8, 8)); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ck")
	if err := sess.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	if _, err := Resume(NewPeriodicConfig(8, WithGhostSize(4)), dir); err == nil {
		t.Error("ghost-size mismatch accepted")
	}
	if _, err := Resume(NewPeriodicConfig(10, WithGhostSize(3)), dir); err == nil {
		t.Error("domain mismatch accepted")
	}
	if _, err := Resume(NewPeriodicConfig(8, WithGhostSize(3), WithDecomposition(DecomposeRCB)), dir); err == nil {
		t.Error("decomposition-kind mismatch accepted")
	}
	if _, err := Resume(cfg, filepath.Join(dir, "nope")); err == nil {
		t.Error("missing checkpoint dir accepted")
	}

	// Auto-checkpointing needs a configured directory.
	plain, err := Open(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Step(testParticles(421, 8, 8), WithCheckpointEvery(1)); err == nil ||
		!strings.Contains(err.Error(), "CheckpointDir") {
		t.Errorf("WithCheckpointEvery without a checkpoint dir: %v", err)
	}
}

// TestStepFromFileSourceMatchesInline is the out-of-core acceptance
// gate: a quarter-window FileSource produces per-block bytes identical
// to the inline path while its accounting proves the full particle set
// was never staged at once.
func TestStepFromFileSourceMatchesInline(t *testing.T) {
	ps := testParticles(430, 10, 8) // 1000 particles
	const chunks = 8
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := WriteSnapshot(path, ps, chunks); err != nil {
		t.Fatal(err)
	}
	cfg := NewPeriodicConfig(8, WithGhostSize(3))

	inline, err := Open(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer inline.Close()
	want, err := inline.Step(ps)
	if err != nil {
		t.Fatal(err)
	}

	src, err := OpenFileSource(path, chunks/4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	streamed, err := Open(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer streamed.Close()
	got, err := streamed.StepFrom(src)
	if err != nil {
		t.Fatal(err)
	}

	if got.Counts != want.Counts {
		t.Fatalf("counts %+v, want %+v", got.Counts, want.Counts)
	}
	for r := range want.Meshes {
		gb, err := got.Meshes[r].Encode()
		if err != nil {
			t.Fatal(err)
		}
		wb, err := want.Meshes[r].Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("block %d differs between FileSource and inline step", r)
		}
	}

	st := src.Stats()
	if st.TotalParticles != len(ps) {
		t.Fatalf("TotalParticles = %d, want %d", st.TotalParticles, len(ps))
	}
	if st.PeakResidentParticles >= st.TotalParticles {
		t.Errorf("peak resident %d of %d particles — the window never evicted",
			st.PeakResidentParticles, st.TotalParticles)
	}
	if st.PeakResidentChunks > chunks/4 {
		t.Errorf("peak resident chunks %d exceeds window %d", st.PeakResidentChunks, chunks/4)
	}
	if st.Loads != chunks {
		t.Errorf("Loads = %d, want %d", st.Loads, chunks)
	}
}

package tess

import (
	"time"

	"repro/internal/core"
)

// Session is a persistent tessellation pipeline for repeated passes over
// the same domain decomposition — the in situ pattern of tessellating
// many snapshots of one evolving simulation. Open builds the
// decomposition, the communication world, and all per-rank exchange,
// index, scratch, and output buffers once; every Step then reuses them,
// so at steady state a step allocates a small fraction of what a
// standalone Run does while producing byte-identical output (pinned by
// tests across block counts, worker counts, and warm versus cold
// sessions).
//
// The *Output returned by Step is a loan valid until the next Step;
// deep-copy it with Output.Clone to keep it longer. After an aborted step
// (rank failure, injected crash, watchdog stall) the session is
// terminally failed: every later Step returns the original abort error
// immediately, without hanging. A Session is driven from one goroutine;
// Close is idempotent.
type Session struct {
	s *core.Session
}

// Open starts a persistent tessellation session over numBlocks blocks.
// cfg plays the same role as in Run; cfg.OutputPath, if set, is the
// default destination every Step writes to (use StepTo for per-step
// paths).
func Open(cfg Config, numBlocks int) (*Session, error) {
	s, err := core.OpenSession(cfg, numBlocks)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Step runs one tessellation pass over particles through the session's
// retained state, adjusted by per-step options (WithOutputPath,
// WithCheckpointEvery). The result is byte-identical to
// Run(cfg, particles, numBlocks) and is loaned until the next Step.
//
//tess:loaned
func (s *Session) Step(particles []Particle, opts ...StepOption) (*Output, error) {
	return s.StepFrom(NewSliceSource(particles), opts...)
}

// StepFrom is Step over a snapshot Source instead of an inline slice:
// the source's chunks are loaded, partitioned, and released one at a
// time, so a windowed FileSource never stages the whole snapshot while
// producing output byte-identical to an inline Step over the same
// particles. Every Step variant routes through this path.
//
//tess:loaned
func (s *Session) StepFrom(src Source, opts ...StepOption) (*Output, error) {
	return s.s.StepSource(src, resolveStepOpts(s.s.DefaultOutputPath(), opts))
}

// StepTo is Step writing this pass's blocks to outputPath (empty writes
// nothing), overriding cfg.OutputPath.
//
// Deprecated: use Step(particles, WithOutputPath(outputPath)), which
// composes with the other per-step options.
//
//tess:loaned
func (s *Session) StepTo(particles []Particle, outputPath string) (*Output, error) {
	return s.Step(particles, WithOutputPath(outputPath))
}

// Checkpoint persists the session's resumable state into dir — the
// decomposition, step counter, warm/cold baseline, and the last
// completed step's per-block meshes in the compact v2 format — for a
// later Resume. It must be called between steps (not before the first)
// and commits atomically: a crash mid-checkpoint leaves the previous
// complete checkpoint, or none. WithCheckpointEvery automates it.
func (s *Session) Checkpoint(dir string) error { return s.s.Checkpoint(dir) }

// StepDensity runs the streaming density pipeline over one snapshot's
// particles through the session's ranks: triangulate (rank 0),
// interpolate (grid slabs spread across ranks and their worker shares),
// then the statistics/spectrum reduction — each phase recorded under the
// session's Recorder ("triangulate"/"interpolate"/"spectrum"). The grid
// bytes are identical to ComputeDensity on the same particles for any
// block/worker count. The Result is loaned until the next StepDensity;
// Clone it to keep it.
//
//tess:loaned
func (s *Session) StepDensity(particles []Particle, dc DensityConfig) (*DensityResult, error) {
	return s.s.StepDensity(particles, dc)
}

// DensitySteps returns the number of completed density-pipeline steps.
func (s *Session) DensitySteps() int { return s.s.DensitySteps() }

// Close releases the session. The last Step's Output stays readable
// (nothing will overwrite it any more), but no further Step may run.
func (s *Session) Close() error { return s.s.Close() }

// Abort kills the session's world with cause, from any goroutine: a Step
// in flight unblocks and returns an error whose chain carries cause (and
// ErrWorldAborted), and every later Step fails fast with the same cause.
// It is the cancellation entry point for a host multiplexing many
// sessions — one goroutine drives Steps while another aborts. Close must
// still be called to release the session.
func (s *Session) Abort(cause error) { s.s.Abort(cause) }

// Steps returns the number of completed steps.
func (s *Session) Steps() int { return s.s.Steps() }

// WarmStats returns the cumulative warm/cold site counts over all steps
// and ranks: a site is warm when its particle moved at most the ghost
// distance since the previous step (the regime the retained buffers are
// sized for), cold when new or displaced farther. Every site of the first
// step is cold. The same numbers reach an attached Recorder as the
// "sites-warm" and "sites-cold" counters.
func (s *Session) WarmStats() (warm, cold int64) { return s.s.WarmStats() }

// SessionStats is the aggregate health of a session: warm/cold site
// classification, step count, and the adaptive-decomposition activity of
// a DecomposeRCB session.
type SessionStats struct {
	// WarmSites and ColdSites are the cumulative counts WarmStats returns.
	WarmSites, ColdSites int64
	// Steps is the number of completed steps.
	Steps int
	// Rebalances counts the warm re-decompositions performed (0 unless the
	// session uses DecomposeRCB with a RebalanceThreshold).
	Rebalances int
	// LastImbalance is the most recent step's compute-phase imbalance
	// ratio (slowest rank over mean; 1 = perfectly balanced, 0 before the
	// first step) — the signal compared against Config.RebalanceThreshold.
	LastImbalance float64
	// Uptime is how long the session has been open. Like every other field
	// here it is cumulative session state: a per-step obs Recorder Reset
	// (which wipes each step's counters) never touches it.
	Uptime time.Duration
}

// Stats returns the session's aggregate statistics.
func (s *Session) Stats() SessionStats {
	warm, cold := s.s.WarmStats()
	return SessionStats{
		WarmSites:     warm,
		ColdSites:     cold,
		Steps:         s.s.Steps(),
		Rebalances:    s.s.Rebalances(),
		LastImbalance: s.s.LastImbalance(),
		Uptime:        s.s.Uptime(),
	}
}

package tess

import (
	"io"

	"repro/internal/catalyst"
	"repro/internal/core"
	"repro/internal/cosmotools"
	"repro/internal/diy"
	"repro/internal/track"
)

// The in situ cosmology-tools framework (the paper's Figure 4): analyses
// are enabled and parameterized through a configuration deck, run at
// selected time steps of the simulation, and publish results to storage
// and/or a live HTTP endpoint.

// ToolsConfig is a parsed cosmology-tools configuration deck.
type ToolsConfig = cosmotools.Config

// Pipeline drives the configured analyses over a simulation run.
type Pipeline = cosmotools.Pipeline

// AnalysisResult is one analysis invocation's summary.
type AnalysisResult = cosmotools.Result

// LiveServer publishes pipeline results over HTTP while the simulation
// runs (the Catalyst/ParaView-server role of the paper's workflow).
type LiveServer = catalyst.Server

// LiveStatus is the run-progress document served at /status.
type LiveStatus = catalyst.Status

// FeatureTree is the temporal feature (void) tree built from tracked
// components.
type FeatureTree = track.Tree

// FeatureEvent classifies one tracked transition (continuation, merge,
// split, birth, death).
type FeatureEvent = track.Event

// ParseToolsConfig reads a configuration deck (see cosmotools.ParseConfig
// for the format).
func ParseToolsConfig(r io.Reader) (*ToolsConfig, error) {
	return cosmotools.ParseConfig(r)
}

// NewPipeline builds the analyses named in the deck against a simulation
// configuration; outputDir receives analysis files ("" disables them).
func NewPipeline(cfg *ToolsConfig, sim SimConfig, outputDir string) (*Pipeline, error) {
	return cosmotools.NewPipeline(cfg, sim, outputDir)
}

// NewLiveServer returns an empty live-results server; attach it to a
// pipeline with (*LiveServer).Attach and serve (*LiveServer).Handler().
func NewLiveServer() *LiveServer { return catalyst.NewServer() }

// KnownAnalyses lists the analyses a deck may enable.
func KnownAnalyses() []string { return cosmotools.KnownAnalyses() }

// AutoTessellate is Run with automatic ghost-size determination (the
// follow-up the paper proposes in Sec. V): the ghost region grows until
// every cell is proven complete or the decomposition's maximum is
// reached. It returns the output and the ghost size used. A zero
// cfg.GhostSize starts from an estimate based on the mean interparticle
// spacing. Each attempt is one session-backed pass (the ghost size, and
// with it the exchange geometry, changes between attempts, so attempts
// cannot share a session); cfg.Workers applies to each attempt exactly as
// in Run.
func AutoTessellate(cfg Config, particles []Particle, numBlocks int) (*Output, float64, error) {
	return core.AutoRun(cfg, particles, numBlocks)
}

// EstimateGhost proposes a ghost size for a particle population (factor
// times the mean interparticle spacing, clamped to what the decomposition
// supports; factor <= 0 defaults to 4).
func EstimateGhost(cfg Config, numParticles, numBlocks int, factor float64) (float64, error) {
	return core.EstimateGhost(cfg, numParticles, numBlocks, factor)
}

// MaxGhostFor returns the widest ghost region a (domain, blocks)
// decomposition supports: the smallest block side.
func MaxGhostFor(cfg Config, numBlocks int) (float64, error) {
	d, err := diy.Decompose(cfg.Domain, numBlocks, cfg.Periodic)
	if err != nil {
		return 0, err
	}
	return core.MaxGhost(d), nil
}

package tess

import (
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/diy"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/voids"
)

// Particle is a point with a stable global ID (the unit of work the
// tessellation distributes across blocks).
type Particle = diy.Particle

// Config controls a tessellation pass; see the field documentation in
// internal/core. Construct one with NewPeriodicConfig or NewBoundedConfig
// and adjust as needed.
type Config = core.Config

// Output is the gathered result of a tessellation: per-block meshes, global
// cell counts, and slowest-rank phase timings.
type Output = core.Output

// Timing is the per-phase wall time of a pass (exchange, compute, output).
type Timing = core.Timing

// CellCounts tracks how many cells were kept, culled, or incomplete.
type CellCounts = core.CellCounts

// CellSummary is a flattened per-cell row (ID, site, volume, area, faces).
type CellSummary = core.CellSummary

// AccuracyReport compares a parallel run against a serial reference
// (Table I's matching-cells metric).
type AccuracyReport = core.AccuracyReport

// SimConfig configures the built-in particle-mesh N-body simulation (the
// HACC stand-in); construct one with NewSimConfig.
type SimConfig = nbody.Config

// Simulation is the N-body simulation driven by in situ analysis.
type Simulation = nbody.Simulation

// NewSimConfig returns the default simulation configuration for ng^3
// particles in an ng^3 periodic box, tuned so that ~100 steps follow the
// paper's structure-formation schedule.
func NewSimConfig(ng int) SimConfig { return nbody.DefaultConfig(ng) }

// NewSimulation creates a simulation with Zel'dovich initial conditions.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return nbody.New(cfg) }

// Vec3 is the 3D vector type used throughout the API.
type Vec3 = geom.Vec3

// Box is an axis-aligned box.
type Box = geom.Box

// DecompKind selects the block decomposition strategy (see the constants).
type DecompKind = core.DecompKind

const (
	// DecomposeRegular is the paper's regular grid of equal-volume blocks
	// (the default).
	DecomposeRegular = core.DecomposeRegular
	// DecomposeRCB builds particle-balanced blocks by recursive coordinate
	// bisection: the domain splits along the longest axis at the weighted
	// median of the particle positions until every block holds ~equal
	// particle counts. On clustered inputs this removes the compute-phase
	// imbalance of equal-volume blocks; merged canonical output is
	// byte-identical to the regular grid.
	DecomposeRCB = core.DecomposeRCB
)

// Option adjusts a Config built by NewPeriodicConfig or NewBoundedConfig.
// Options are pure sugar over the Config fields — applying them by hand
// after construction is equivalent.
type Option func(*Config)

// WithDecomposition selects the block decomposition strategy
// (Config.Decomposition): DecomposeRegular (default) or DecomposeRCB.
func WithDecomposition(k DecompKind) Option {
	return func(c *Config) { c.Decomposition = k }
}

// WithRebalanceThreshold arms warm re-decomposition for Sessions using
// DecomposeRCB (Config.RebalanceThreshold): when a step's compute-phase
// imbalance ratio (slowest rank over mean) exceeds t, the next Step
// rebuilds the decomposition from its particle positions while keeping all
// retained scratch/pool/recorder state. Typical values are 1.2-1.5; 0
// disables rebalancing.
func WithRebalanceThreshold(t float64) Option {
	return func(c *Config) { c.RebalanceThreshold = t }
}

// WithWorkers sets the number of intra-rank compute worker goroutines
// (Config.Workers; 0 divides the worker budget among the concurrent
// ranks). Results are identical for every worker count.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithBudget makes the pipeline draw its default worker count from b
// (Config.Budget) instead of the process-wide shared budget. A daemon
// multiplexing many concurrent sessions gives them one budget so they
// divide the machine fairly; see WorkerBudget.
func WithBudget(b *WorkerBudget) Option { return func(c *Config) { c.Budget = b } }

// WithRecorder attaches an observability recorder (Config.Recorder), sized
// to the block count of the runs it will observe.
func WithRecorder(r *Recorder) Option { return func(c *Config) { c.Recorder = r } }

// WithFaults arms the deterministic fault-injection plan (Config.Faults).
func WithFaults(p *FaultPlan) Option { return func(c *Config) { c.Faults = p } }

// WithStallTimeout arms the communication stall watchdog
// (Config.StallTimeout).
func WithStallTimeout(d time.Duration) Option { return func(c *Config) { c.StallTimeout = d } }

// WithGhostSize overrides the ghost-region thickness (Config.GhostSize).
func WithGhostSize(g float64) Option { return func(c *Config) { c.GhostSize = g } }

// WithOutput directs each pass's collective write to path
// (Config.OutputPath; a Session's StepPath can override it per step).
func WithOutput(path string) Option { return func(c *Config) { c.OutputPath = path } }

// NewPeriodicConfig returns a Config for the cosmology case: a periodic
// cubic box [0, L)^3 with a ghost size of 4 units (adequate for particle
// sets at ~1 unit mean spacing, per the paper's accuracy study) and the
// Quickhull geometry pass enabled. Options are applied in order on top of
// those defaults.
func NewPeriodicConfig(L float64, opts ...Option) Config {
	cfg := Config{
		Domain:    geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)),
		Periodic:  true,
		GhostSize: 4,
		HullPass:  true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// NewBoundedConfig returns a Config for a non-periodic domain; cells
// touching the domain boundary are reported incomplete and deleted unless
// KeepIncomplete is set. Options are applied in order on top of the
// defaults.
func NewBoundedConfig(domain geom.Box, opts ...Option) Config {
	cfg := Config{
		Domain:    domain,
		Periodic:  false,
		GhostSize: 4,
		HullPass:  true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Tessellate runs a standalone-mode parallel tessellation of particles
// over numBlocks blocks.
//
// Deprecated: Tessellate is the original name of Run and behaves
// identically; use Run, or Open/Step/Close for repeated passes.
func Tessellate(cfg Config, particles []Particle, numBlocks int) (*Output, error) {
	return core.Run(cfg, particles, numBlocks)
}

// Run executes a standalone tessellation pass — a single-step session
// (Open, one Step, Close) under the hood; callers tessellating many
// snapshots of the same domain should keep a Session open instead. It is
// the fault-contained entry point an in situ host should call: a rank that
// panics — whether a genuine engine bug or an injected Config.Faults crash
// — surfaces as an error whose chain contains a *RankError (and
// ErrWorldAborted), never a process exit; with Config.StallTimeout armed,
// a communication deadlock surfaces as a *StallError wait-for dump instead
// of a hang. Within each rank the compute phase fans out over
// Config.Workers goroutines (0, the default, divides GOMAXPROCS among the
// concurrent ranks); the output is identical for every worker count.
func Run(cfg Config, particles []Particle, numBlocks int) (*Output, error) {
	return core.Run(cfg, particles, numBlocks)
}

// FaultPlan is the deterministic fault-injection plan attachable to
// Config.Faults: seeded per-rank compute slowdowns, message delivery
// delays, and rank crash-at-step-N. Delay-only plans leave the output
// byte-identical to a fault-free run; crash plans make the run return an
// error carrying a *RankError. See internal/faultinject.
type FaultPlan = faultinject.Plan

// FaultCrash is the panic value of an injected crash, recoverable from a
// failed run's error chain via errors.As (it sits inside the RankError).
type FaultCrash = faultinject.Crash

// RankError reports a single failing rank: the value it panicked with (or
// the error it returned) plus the goroutine stack for panics. Extract it
// from a failed run with errors.As.
type RankError = comm.RankError

// StallError is the stall watchdog's diagnosis of a communication
// deadlock: a wait-for-graph dump of what every rank was blocked on when
// no progress had been made for Config.StallTimeout.
type StallError = comm.StallError

// ErrWorldAborted is the sentinel present (via errors.Is) in every error
// produced by a run that was aborted — by a rank failure, an injected
// crash, or the stall watchdog.
var ErrWorldAborted = comm.ErrWorldAborted

// EffectiveWorkers reports the intra-rank worker count a tessellation pass
// would use when concurrentRanks ranks run at once: cfg.Workers if set,
// otherwise the worker budget (cfg.Budget, or the process-wide shared
// budget) divided fairly among every active rank — this pipeline's and
// every concurrently open session's.
func EffectiveWorkers(cfg Config, concurrentRanks int) int {
	return core.EffectiveWorkers(cfg, concurrentRanks)
}

// WorkerBudget arbitrates the machine's cores among concurrently running
// tessellation pipelines: every open Session registers its rank count with
// its budget, and pipelines without an explicit Workers setting divide the
// budget's total by the ranks active across all of them. Sessions without
// an explicit budget share one process-wide default, so two concurrent
// Runs already split GOMAXPROCS instead of each assuming it owns the
// machine. Worker counts are advisory scheduling only — results are
// byte-identical for every worker count.
type WorkerBudget = core.WorkerBudget

// NewWorkerBudget returns a worker budget of total workers; total <= 0
// tracks GOMAXPROCS.
func NewWorkerBudget(total int) *WorkerBudget { return core.NewWorkerBudget(total) }

// SharedWorkerBudget returns the process-wide budget every pipeline whose
// Config.Budget is nil draws on.
func SharedWorkerBudget() *WorkerBudget { return core.SharedWorkerBudget() }

// CompareAccuracy matches a parallel run's cells against a reference run
// by particle ID (Table I's metric).
func CompareAccuracy(reference, parallel []CellSummary, tol float64) AccuracyReport {
	return core.CompareAccuracy(reference, parallel, tol)
}

// Recorder is the always-on observability recorder: attach one to
// Config.Recorder (sized to the block count) and the pass collects per-rank
// phase spans, per-pair communication counters, and pipeline metrics into
// Output.Obs. A nil recorder costs one pointer test per hook.
type Recorder = obs.Recorder

// ObsSnapshot is the immutable aggregate of a recorded pass; it exports as
// Chrome trace-event JSON via WriteTrace/WriteTraceFile (open the file in
// chrome://tracing or https://ui.perfetto.dev).
type ObsSnapshot = obs.Snapshot

// NewRecorder returns a Recorder for a run over numBlocks blocks.
func NewRecorder(numBlocks int) *Recorder { return obs.NewRecorder(numBlocks) }

// Phase identifies one stage of the per-rank pipeline in an ObsSnapshot
// (exchange, ghost merge, compute, output, barrier).
type Phase = obs.Phase

// Pipeline phases, usable with ObsSnapshot.PhaseTotal / SlowestRank /
// Imbalance.
const (
	PhaseExchange    = obs.PhaseExchange
	PhaseGhostMerge  = obs.PhaseGhostMerge
	PhaseCompute     = obs.PhaseCompute
	PhaseOutput      = obs.PhaseOutput
	PhaseBarrier     = obs.PhaseBarrier
	PhaseTriangulate = obs.PhaseTriangulate
	PhaseInterpolate = obs.PhaseInterpolate
	PhaseSpectrum    = obs.PhaseSpectrum
)

// DensityConfig configures the streaming density pipeline (DTFE
// interpolation onto a sample grid plus spectrum/void statistics); see
// Session.StepDensity. A zero Box inherits the session's domain.
type DensityConfig = density.Config

// DensityResult is one snapshot's density-pipeline output. When returned
// by StepDensity its Grid is loaned until the next step; Clone detaches
// it.
type DensityResult = density.Result

// DensityStats summarizes a sampled density grid (mean, percentiles, void
// fraction, and the grid-vs-tracer mass-conservation diagnostic).
type DensityStats = density.Stats

// SpectrumBin is one radial bin of a density power spectrum.
type SpectrumBin = density.SpectrumBin

// EncodeDensityGrid serializes a density grid as little-endian float64s,
// the wire format of the daemon's grid-slice endpoint.
func EncodeDensityGrid(grid []float64) []byte { return density.EncodeGrid(grid) }

// DecodeDensityGrid parses a grid encoded by EncodeDensityGrid.
func DecodeDensityGrid(b []byte) ([]float64, error) { return density.DecodeGrid(b) }

// ComputeDensity runs the density pipeline once, outside any session —
// the direct single-process oracle daemon grids are compared against.
func ComputeDensity(cfg DensityConfig, pts []Vec3, masses []float64) (*DensityResult, error) {
	return density.Compute(cfg, pts, masses)
}

// BlockMesh is the per-block analysis data model (vertices, connectivity,
// per-cell volumes and areas).
type BlockMesh = meshio.BlockMesh

// MergeCanonical combines the per-block meshes of a complete (periodic)
// tessellation into one decomposition-independent global mesh: runs over the
// same particles with different block counts encode byte-identically. See
// internal/meshio for the canonicalization rules.
func MergeCanonical(meshes []*BlockMesh, domain Box, periodic bool) (*BlockMesh, error) {
	return meshio.MergeCanonical(meshes, domain, periodic)
}

// ParticlesFromPositions wraps raw positions with sequential IDs.
func ParticlesFromPositions(pos []Vec3) []Particle {
	out := make([]Particle, len(pos))
	for i, p := range pos {
		out[i] = Particle{ID: int64(i), Pos: p}
	}
	return out
}

// ParticlesFromSim snapshots the current particle state of a simulation.
func ParticlesFromSim(s *nbody.Simulation) []Particle {
	return ParticlesFromPositions(s.Pos)
}

// CellRecord is a cell as read back from a tess output file.
type CellRecord = voids.CellRecord

// VoidComponent is a connected component of large-volume cells — a
// cosmological void with its Minkowski functionals.
type VoidComponent = voids.Component

// Minkowski holds the functionals and shapefinders of a void.
type Minkowski = voids.Minkowski

// ReadTessFile loads every block of a tess output file.
func ReadTessFile(path string) ([]CellRecord, error) {
	return voids.ReadTessFile(path)
}

// FindVoids thresholds cells by minimum volume and groups the survivors
// into connected components, largest first.
func FindVoids(cells []CellRecord, minVolume float64) []VoidComponent {
	return voids.ConnectedComponents(voids.Threshold(cells, minVolume))
}

// VoidZone is one watershed basin of the Voronoi density field.
type VoidZone = voids.Zone

// WatershedVoid is a void grown by flooding zones up to a density barrier.
type WatershedVoid = voids.WatershedVoid

// FindVoidsWatershed segments the cells into density basins (zones) and
// floods them up to densityBarrier — the ZOBOV/Watershed-Void-Finder
// approach from the paper's background, as an alternative to the global
// volume threshold of FindVoids. barrier 0 returns the unmerged zones.
func FindVoidsWatershed(cells []CellRecord, densityBarrier float64) ([]WatershedVoid, error) {
	zones, err := voids.Watershed(cells)
	if err != nil {
		return nil, err
	}
	return voids.FloodZones(cells, zones, densityBarrier), nil
}
